#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "app/experiment.h"
#include "common/config.h"
#include "common/json.h"
#include "obs/event_bus.h"

namespace propsim {
namespace {

ExperimentSpec must_parse(const Config& config) {
  const SpecResult parsed = ExperimentSpec::from_config(config);
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  return parsed.ok() ? parsed.spec() : ExperimentSpec{};
}

/// Small fixed-seed PROP-G run; horizon crosses the warm-up boundary
/// (init_timer * max_init_trial = 100 s) so both phases see events.
Config golden_config(const std::string& extra) {
  return Config::parse(
      "nodes = 64\nhorizon = 400\nsample_interval = 100\n"
      "queries = 300\ninit_timer = 10\nseed = 20070901\n" +
      extra);
}

std::vector<Json> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<Json> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string error;
    const auto parsed = Json::parse(line, &error);
    EXPECT_TRUE(parsed.has_value()) << error << "\nline: " << line;
    if (parsed) lines.push_back(*parsed);
  }
  return lines;
}

// ------------------------------------------------------------ EventBus --

TEST(EventBus, CountsByPhaseAndKind) {
  obs::EventBus bus;
  double now = 0.0;
  bus.set_clock([&now] { return now; });
  bus.set_phase_boundary(100.0);
  bus.emit(obs::TraceEventKind::kProbe, 1);
  now = 99.0;
  bus.emit(obs::TraceEventKind::kExchangeCommit, 1, 2, 0.5);
  now = 100.0;  // boundary itself is maintenance
  bus.emit(obs::TraceEventKind::kExchangeCommit, 3, 4, 0.7);
  now = 250.0;
  bus.emit(obs::TraceEventKind::kLeave, 3);

  if (!obs::trace_compiled_in()) {
    EXPECT_EQ(bus.total_events(), 0u);  // emit compiled out
    return;
  }
  EXPECT_EQ(bus.total_events(), 4u);
  EXPECT_EQ(bus.count(obs::TracePhase::kWarmup,
                      obs::TraceEventKind::kExchangeCommit),
            1u);
  EXPECT_EQ(bus.count(obs::TracePhase::kMaintenance,
                      obs::TraceEventKind::kExchangeCommit),
            1u);
  EXPECT_EQ(bus.count(obs::TraceEventKind::kExchangeCommit), 2u);
  EXPECT_EQ(bus.count(obs::TracePhase::kWarmup, obs::TraceEventKind::kProbe),
            1u);
  EXPECT_EQ(bus.count(obs::TracePhase::kMaintenance,
                      obs::TraceEventKind::kLeave),
            1u);

  const obs::TraceSummary s = bus.summary();
  EXPECT_EQ(s.events, 4u);
  EXPECT_EQ(s.events_by_phase[0], 2u);
  EXPECT_EQ(s.events_by_phase[1], 2u);
  EXPECT_DOUBLE_EQ(s.phase_boundary_s, 100.0);
  EXPECT_GE(s.warmup_wall_ms, 0.0);
  EXPECT_GE(s.maintenance_wall_ms, 0.0);
}

TEST(EventBus, NoClockStampsZero) {
  obs::EventBus bus;
  bus.set_phase_boundary(10.0);
  bus.emit(obs::TraceEventKind::kJoin, 7);
  if (!obs::trace_compiled_in()) return;
  // Time 0 < boundary => warm-up.
  EXPECT_EQ(bus.count(obs::TracePhase::kWarmup, obs::TraceEventKind::kJoin),
            1u);
}

// ----------------------------------------------------------- TraceSink --

TEST(TraceSink, StreamsSchemaValidJsonl) {
  const std::string path = testing::TempDir() + "trace_sink_unit.jsonl";
  {
    obs::TraceSink sink(path, /*buffer_events=*/3);  // force wrap flushes
    ASSERT_TRUE(sink.ok());
    obs::EventBus bus;
    double now = 0.0;
    bus.set_clock([&now] { return now; });
    bus.set_phase_boundary(5.0);
    bus.attach_sink(&sink);
    for (int i = 0; i < 10; ++i) {
      now = static_cast<double>(i);
      bus.emit(obs::TraceEventKind::kWalkHop, static_cast<std::uint32_t>(i),
               static_cast<std::uint32_t>(i + 1), 1.5 * i,
               static_cast<std::uint64_t>(i));
    }
    bus.finalize();
    if (obs::trace_compiled_in()) {
      EXPECT_EQ(sink.events_written(), 10u);
    }
    sink.close();
  }
  const std::vector<Json> lines = read_jsonl(path);
  ASSERT_GE(lines.size(), 1u);
  // Header: schema, version, vocabulary.
  const Json& header = lines[0];
  EXPECT_EQ(header.find("schema")->as_string(), "propsim.trace");
  EXPECT_EQ(header.find("version")->as_double(), obs::TraceSink::kSchemaVersion);
  EXPECT_DOUBLE_EQ(header.find("phase_boundary_s")->as_double(), 5.0);
  EXPECT_EQ(header.find("kinds")->array_items().size(),
            obs::kTraceEventKindCount);
  if (!obs::trace_compiled_in()) {
    EXPECT_EQ(lines.size(), 1u);  // header only
    return;
  }
  ASSERT_EQ(lines.size(), 11u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const Json& e = lines[i];
    EXPECT_EQ(e.find("kind")->as_string(), "walk-hop");
    const double t = e.find("t")->as_double();
    EXPECT_EQ(e.find("phase")->as_string(),
              t < 5.0 ? "warmup" : "maintenance");
    EXPECT_DOUBLE_EQ(e.find("value")->as_double(), 1.5 * t);
  }
  std::remove(path.c_str());
}

TEST(TraceSink, ReportsUnopenablePath) {
  obs::TraceSink sink("/nonexistent-dir/propsim-trace.jsonl");
  EXPECT_FALSE(sink.ok());
}

// ------------------------------------------------------- Spec parsing ---

TEST(TraceSpec, TraceBufferWithoutTraceIsAnError) {
  const SpecResult r = ExperimentSpec::from_config(
      Config::parse("trace_buffer = 64\n"));
  EXPECT_FALSE(r.ok());
}

TEST(TraceSpec, TraceKeyRequiresCompiledInBuild) {
  const SpecResult r = ExperimentSpec::from_config(
      golden_config("trace = /tmp/x.jsonl\n"));
  EXPECT_EQ(r.ok(), obs::trace_compiled_in());
}

// ----------------------------------------------- Golden experiment run --

TEST(TraceGolden, FixedSeedRunEmitsSchemaValidStream) {
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "PROPSIM_TRACE=OFF build";
  const std::string path = testing::TempDir() + "trace_golden.jsonl";
  const auto spec = must_parse(golden_config("trace = " + path + "\n"));
  const ExperimentResult result = run_experiment(spec);
  EXPECT_GT(result.exchanges, 0u);
  EXPECT_EQ(result.trace.sink_path, path);
  EXPECT_EQ(result.trace.sink_events, result.trace.events);

  const std::vector<Json> lines = read_jsonl(path);
  ASSERT_EQ(lines.size(), result.trace.events + 1);  // header + events
  EXPECT_EQ(lines[0].find("schema")->as_string(), "propsim.trace");

  // Both phases are populated (boundary 100 s inside the 400 s horizon),
  // events are time-ordered within the simulation, and the streamed
  // exchange-commit count equals the protocol counter.
  std::uint64_t commits = 0;
  std::uint64_t warmup = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const Json& e = lines[i];
    const double t = e.find("t")->as_double();
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, spec.horizon_s);
    EXPECT_EQ(e.find("phase")->as_string(),
              t < result.trace.phase_boundary_s ? "warmup" : "maintenance");
    if (e.find("kind")->as_string() == "exchange-commit") ++commits;
    if (e.find("phase")->as_string() == "warmup") ++warmup;
  }
  EXPECT_EQ(commits, result.exchanges);
  EXPECT_EQ(commits, result.trace.count(obs::TraceEventKind::kExchangeCommit));
  EXPECT_EQ(warmup, result.trace.events_by_phase[0]);
  EXPECT_GT(warmup, 0u);
  EXPECT_GT(result.trace.events_by_phase[1], 0u);

  // counters() v2 exposes the same number.
  bool found = false;
  for (const auto& [name, value] : result.counters()) {
    if (name == "maintenance_exchanges" || name == "warmup_exchanges") {
      found = true;
    }
    if (name == "exchange_aborts") {
      EXPECT_EQ(value,
                result.trace.count(obs::TraceEventKind::kExchangeAbort));
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST(TraceGolden, SinkAttachmentDoesNotPerturbResults) {
  const std::string path = testing::TempDir() + "trace_identical.jsonl";
  const ExperimentResult plain = run_experiment(must_parse(golden_config("")));
  ExperimentResult traced = plain;
  if (obs::trace_compiled_in()) {
    traced = run_experiment(
        must_parse(golden_config("trace = " + path + "\n")));
    std::remove(path.c_str());
  }
  // The sink only serializes what the bus already counts: simulation
  // outcomes are identical with and without it (and, by the same
  // argument, in PROPSIM_TRACE=OFF builds, where this degenerates to a
  // self-comparison but the run above still exercises the no-op path).
  EXPECT_EQ(plain.exchanges, traced.exchanges);
  EXPECT_EQ(plain.attempts, traced.attempts);
  EXPECT_EQ(plain.control_messages, traced.control_messages);
  EXPECT_DOUBLE_EQ(plain.initial_value, traced.initial_value);
  EXPECT_DOUBLE_EQ(plain.final_value, traced.final_value);
  ASSERT_EQ(plain.series.points().size(), traced.series.points().size());
  for (std::size_t i = 0; i < plain.series.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.series.points()[i].value,
                     traced.series.points()[i].value);
  }
  EXPECT_EQ(plain.trace.events, traced.trace.events);
}

TEST(TraceGolden, DhtRunEmitsJoinAndLookupHops) {
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "PROPSIM_TRACE=OFF build";
  const auto spec = must_parse(Config::parse(
      "overlay = chord\nnodes = 64\nhorizon = 200\nsample_interval = 100\n"
      "queries = 100\nlookup_rate = 2\n"));
  const ExperimentResult result = run_experiment(spec);
  EXPECT_EQ(result.trace.count(obs::TraceEventKind::kJoin), 64u);
  EXPECT_GT(result.trace.count(obs::TraceEventKind::kLookupHop), 0u);
  EXPECT_EQ(result.trace.count(obs::TraceEventKind::kLookup),
            result.lookups_issued);
}

}  // namespace
}  // namespace propsim
