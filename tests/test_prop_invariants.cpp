// Cross-substrate property suite: the PROP theorems, checked on every
// overlay substrate and across parameter sweeps (parameterized gtest).
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "core/prop_engine.h"
#include "fixtures.h"
#include "gnutella/gnutella.h"
#include "overlay/isomorphism.h"
#include "pastry/pastry.h"
#include "sim/simulator.h"
#include "tapestry/tapestry.h"
#include "workload/host_selection.h"

namespace propsim {
namespace {

enum class Substrate { kGnutella, kChord, kPastry, kTapestry, kCan };

const char* substrate_name(Substrate s) {
  switch (s) {
    case Substrate::kGnutella:
      return "Gnutella";
    case Substrate::kChord:
      return "Chord";
    case Substrate::kPastry:
      return "Pastry";
    case Substrate::kTapestry:
      return "Tapestry";
    case Substrate::kCan:
      return "Can";
  }
  return "?";
}

/// World + overlay bundle for a given substrate.
struct Bundle {
  TransitStubTopology topo;
  std::unique_ptr<LatencyOracle> oracle;
  std::unique_ptr<OverlayNetwork> net;
};

Bundle make_bundle(Substrate substrate, std::size_t n, std::uint64_t seed) {
  Bundle b;
  Rng rng(seed);
  b.topo = make_transit_stub(testing::tiny_transit_stub_config(), rng);
  b.oracle = std::make_unique<LatencyOracle>(b.topo.graph);
  const auto hosts = select_stub_hosts(b.topo, n, rng);
  switch (substrate) {
    case Substrate::kGnutella: {
      GnutellaConfig cfg;
      b.net = std::make_unique<OverlayNetwork>(
          build_gnutella_overlay(cfg, hosts, *b.oracle, rng));
      break;
    }
    case Substrate::kChord: {
      const auto ring = ChordRing::build_random(n, ChordConfig{}, rng);
      b.net = std::make_unique<OverlayNetwork>(
          make_chord_overlay(ring, hosts, *b.oracle));
      break;
    }
    case Substrate::kPastry: {
      const auto pastry = PastryNetwork::build_random(n, PastryConfig{}, rng);
      b.net = std::make_unique<OverlayNetwork>(
          make_pastry_overlay(pastry, hosts, *b.oracle));
      break;
    }
    case Substrate::kTapestry: {
      const auto tapestry =
          TapestryNetwork::build_random(n, TapestryConfig{}, rng);
      b.net = std::make_unique<OverlayNetwork>(
          make_tapestry_overlay(tapestry, hosts, *b.oracle));
      break;
    }
    case Substrate::kCan: {
      const auto space = CanSpace::build(n, rng);
      b.net = std::make_unique<OverlayNetwork>(
          make_can_overlay(space, hosts, *b.oracle));
      break;
    }
  }
  return b;
}

// -------------------------- PROP-G invariants on every substrate ----

class PropGSubstrate
    : public ::testing::TestWithParam<std::tuple<Substrate, std::size_t>> {};

TEST_P(PropGSubstrate, EngineRunPreservesStructureAndImproves) {
  const auto [substrate, nhops] = GetParam();
  Bundle b = make_bundle(substrate, 48, 9100 + nhops);
  OverlayNetwork& net = *b.net;

  const auto degrees = net.graph().degree_multiset();
  const std::size_t edges = net.graph().edge_count();
  const auto edges_before = host_edges(net.graph(), net.placement());
  const Placement placement_before = net.placement();
  const double latency_before = net.average_logical_link_latency();

  Simulator sim;
  PropParams params;
  params.mode = PropMode::kPropG;
  params.nhops = nhops;
  params.init_timer_s = 10.0;
  PropEngine engine(net, sim, params, 17 + nhops);
  engine.start();
  sim.run_until(1500.0);

  // Structure identical: same logical graph object state.
  EXPECT_EQ(net.graph().degree_multiset(), degrees);
  EXPECT_EQ(net.graph().edge_count(), edges);
  EXPECT_TRUE(net.graph().active_subgraph_connected());
  EXPECT_TRUE(net.placement().validate());

  // Theorem 2 certificate at host level.
  const auto [hosts, phi] =
      placement_bijection(placement_before, net.placement());
  EXPECT_TRUE(isomorphic_via(edges_before,
                             host_edges(net.graph(), net.placement()), hosts,
                             phi));

  // Optimization actually happened.
  EXPECT_GT(engine.stats().exchanges, 0u)
      << substrate_name(substrate) << " nhops=" << nhops;
  EXPECT_LT(net.average_logical_link_latency(), latency_before);
}

INSTANTIATE_TEST_SUITE_P(
    AllSubstratesAndTtls, PropGSubstrate,
    ::testing::Combine(::testing::Values(Substrate::kGnutella,
                                         Substrate::kChord,
                                         Substrate::kPastry,
                                         Substrate::kTapestry,
                                         Substrate::kCan),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3})),
    [](const auto& info) {
      std::string name = substrate_name(std::get<0>(info.param));
      name += "_nhops";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

// ------------------------------ PROP-O invariants across m sweep ----

class PropOParamSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(PropOParamSweep, DegreeAndConnectivityInvariants) {
  const auto [m, attach] = GetParam();
  auto fx = testing::UnstructuredFixture::make(56, 9200 + m * 10 + attach,
                                               attach);
  OverlayNetwork& net = fx.net;
  const auto degrees = net.graph().degree_multiset();
  const double latency_before = net.average_logical_link_latency();

  Simulator sim;
  PropParams params;
  params.mode = PropMode::kPropO;
  params.m = m;
  params.init_timer_s = 10.0;
  PropEngine engine(net, sim, params, 23);
  engine.start();
  sim.run_until(1500.0);

  EXPECT_EQ(net.graph().degree_multiset(), degrees);
  EXPECT_TRUE(net.graph().active_subgraph_connected());
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_LT(net.average_logical_link_latency(), latency_before);
  // Exchange size clamps at m (or delta(G) when m = 0).
  const std::size_t expected =
      m == 0 ? net.graph().min_active_degree() : m;
  EXPECT_EQ(engine.exchange_size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    MTimesAttach, PropOParamSweep,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{4}),
                       ::testing::Values(std::size_t{3}, std::size_t{5})),
    [](const auto& info) {
      std::string name = "m";
      name += std::to_string(std::get<0>(info.param));
      name += "_attach";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

// -------------------- Var sign == measured gain sign, all modes ----

class VarConsistency : public ::testing::TestWithParam<Substrate> {};

TEST_P(VarConsistency, PlannedVarEqualsMeasuredGain) {
  Bundle b = make_bundle(GetParam(), 40, 9300);
  OverlayNetwork& net = *b.net;
  Rng rng(29);
  const auto slots = net.graph().active_slots();
  int checked = 0;
  for (int i = 0; i < 200 && checked < 80; ++i) {
    const SlotId u =
        slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    SlotId v;
    do {
      v = slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    } while (v == u);
    const auto plan = plan_prop_g(net, u, v);
    EXPECT_NEAR(plan.var, measured_gain(net, plan), 1e-9);
    // Committing positive-Var plans keeps the invariant chain honest.
    if (plan.var > 0) {
      apply_exchange(net, plan);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
  EXPECT_TRUE(net.placement().validate());
}

// §4.1's anonymity argument: PROP-G peers may only take *existing*
// identifiers — no id is ever regenerated. In the slot/host model the id
// multiset across hosts must be exactly permuted, which the placement
// bijection certifies directly.
TEST(PropGAnonymity, IdentifierMultisetOnlyPermutes) {
  Rng rng(9400);
  const auto topo =
      make_transit_stub(testing::tiny_transit_stub_config(), rng);
  LatencyOracle oracle(topo.graph);
  const auto hosts = select_stub_hosts(topo, 48, rng);
  const auto ring = ChordRing::build_random(48, ChordConfig{}, rng);
  OverlayNetwork net = make_chord_overlay(ring, hosts, oracle);

  // host -> chord id before.
  std::map<NodeId, ChordId> before;
  for (SlotId s = 0; s < 48; ++s) {
    before[net.placement().host_of(s)] = ring.id_of(s);
  }

  Simulator sim;
  PropParams params;
  params.init_timer_s = 10.0;
  PropEngine engine(net, sim, params, 1);
  engine.start();
  sim.run_until(1500.0);
  ASSERT_GT(engine.stats().exchanges, 0u);

  std::multiset<ChordId> ids_before;
  std::multiset<ChordId> ids_after;
  std::size_t moved = 0;
  for (SlotId s = 0; s < 48; ++s) {
    const NodeId h = net.placement().host_of(s);
    ids_after.insert(ring.id_of(s));
    ids_before.insert(before.at(h));
    if (before.at(h) != ring.id_of(s)) ++moved;
  }
  // Same identifier multiset (nothing minted or destroyed), but hosts
  // really did trade ids.
  EXPECT_EQ(ids_before, ids_after);
  EXPECT_GT(moved, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSubstrates, VarConsistency,
                         ::testing::Values(Substrate::kGnutella,
                                           Substrate::kChord,
                                           Substrate::kPastry,
                                           Substrate::kTapestry,
                                           Substrate::kCan),
                         [](const auto& info) {
                           return substrate_name(info.param);
                         });

}  // namespace
}  // namespace propsim
