#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/exchange.h"
#include "fixtures.h"
#include "overlay/isomorphism.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

// Draws a random (u, v, path) probe outcome like the engine would.
struct Probe {
  SlotId u;
  SlotId v;
  std::vector<SlotId> path;
};

std::optional<Probe> random_probe(const OverlayNetwork& net, std::size_t nhops,
                                  Rng& rng) {
  const auto slots = net.graph().active_slots();
  const SlotId u = slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
  const auto neigh = net.graph().neighbors(u);
  if (neigh.empty()) return std::nullopt;
  const SlotId first =
      neigh[static_cast<std::size_t>(rng.uniform(neigh.size()))];
  auto walk = net.random_walk(u, first, nhops, rng);
  if (!walk.has_value()) return std::nullopt;
  return Probe{u, walk->back(), std::move(*walk)};
}

// ----------------------------------------------------------- PROP-G ----

TEST(PropG, VarMatchesMeasuredGain) {
  auto fx = UnstructuredFixture::make(40, 2001);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    const auto plan = plan_prop_g(fx.net, probe->u, probe->v);
    EXPECT_NEAR(plan.var, measured_gain(fx.net, plan), 1e-9);
  }
}

TEST(PropG, VarIsSymmetric) {
  auto fx = UnstructuredFixture::make(30, 2002);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    EXPECT_NEAR(prop_g_var(fx.net, probe->u, probe->v),
                prop_g_var(fx.net, probe->v, probe->u), 1e-9);
  }
}

TEST(PropG, SwapOfAdjacentSlotsHandled) {
  auto fx = UnstructuredFixture::make(30, 2003);
  // Find an adjacent pair.
  SlotId u = kInvalidSlot, v = kInvalidSlot;
  for (const SlotId s : fx.net.graph().active_slots()) {
    if (fx.net.graph().degree(s) > 0) {
      u = s;
      v = fx.net.graph().neighbors(s)[0];
      break;
    }
  }
  ASSERT_NE(u, kInvalidSlot);
  const auto plan = plan_prop_g(fx.net, u, v);
  EXPECT_NEAR(plan.var, measured_gain(fx.net, plan), 1e-9);
}

TEST(PropG, ApplyLeavesLogicalGraphUntouched) {
  auto fx = UnstructuredFixture::make(40, 2004);
  const auto degrees_before = fx.net.graph().degree_multiset();
  const std::size_t edges_before = fx.net.graph().edge_count();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    apply_exchange(fx.net, plan_prop_g(fx.net, probe->u, probe->v));
  }
  EXPECT_EQ(fx.net.graph().degree_multiset(), degrees_before);
  EXPECT_EQ(fx.net.graph().edge_count(), edges_before);
  EXPECT_TRUE(fx.net.placement().validate());
}

// Theorem 2: the host-labelled overlay stays isomorphic to the original
// under any sequence of PROP-G exchanges.
TEST(PropG, Theorem2IsomorphismUnderExchangeSequences) {
  auto fx = UnstructuredFixture::make(50, 2005);
  const auto edges_before = host_edges(fx.net.graph(), fx.net.placement());
  const Placement placement_before = fx.net.placement();
  Rng rng(4);
  int applied = 0;
  for (int i = 0; i < 200 && applied < 60; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    apply_exchange(fx.net, plan_prop_g(fx.net, probe->u, probe->v));
    ++applied;
  }
  ASSERT_GT(applied, 10);
  const auto edges_after = host_edges(fx.net.graph(), fx.net.placement());
  const auto [hosts, phi] =
      placement_bijection(placement_before, fx.net.placement());
  EXPECT_TRUE(isomorphic_via(edges_before, edges_after, hosts, phi));
}

// Theorem 1 for PROP-G (trivially: graph untouched, but assert anyway).
TEST(PropG, Theorem1ConnectivityPersistence) {
  auto fx = UnstructuredFixture::make(40, 2006);
  Rng rng(5);
  for (int i = 0; i < 80; ++i) {
    const auto probe = random_probe(fx.net, 3, rng);
    if (!probe) continue;
    apply_exchange(fx.net, plan_prop_g(fx.net, probe->u, probe->v));
    ASSERT_TRUE(fx.net.graph().active_subgraph_connected());
  }
}

// ----------------------------------------------------------- PROP-O ----

class PropOSelection : public ::testing::TestWithParam<SelectionPolicy> {};

TEST_P(PropOSelection, VarMatchesMeasuredGain) {
  auto fx = UnstructuredFixture::make(40, 2007);
  Rng rng(6);
  for (int i = 0; i < 150; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    const auto plan = plan_prop_o(fx.net, probe->u, probe->v, probe->path, 2,
                                  GetParam(), rng);
    if (!plan) continue;
    EXPECT_NEAR(plan->var, measured_gain(fx.net, *plan), 1e-9);
  }
}

TEST_P(PropOSelection, TransferSetsRespectConstraints) {
  auto fx = UnstructuredFixture::make(40, 2008);
  Rng rng(7);
  int checked = 0;
  for (int i = 0; i < 200 && checked < 80; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    const auto plan = plan_prop_o(fx.net, probe->u, probe->v, probe->path, 3,
                                  GetParam(), rng);
    if (!plan) continue;
    ++checked;
    EXPECT_EQ(plan->from_u.size(), plan->from_v.size());
    EXPECT_GE(plan->from_u.size(), 1u);
    EXPECT_LE(plan->from_u.size(), 3u);
    for (const SlotId a : plan->from_u) {
      EXPECT_TRUE(fx.net.graph().has_edge(probe->u, a));
      EXPECT_FALSE(fx.net.graph().has_edge(probe->v, a));
      EXPECT_EQ(std::find(probe->path.begin(), probe->path.end(), a),
                probe->path.end());
    }
    for (const SlotId b : plan->from_v) {
      EXPECT_TRUE(fx.net.graph().has_edge(probe->v, b));
      EXPECT_FALSE(fx.net.graph().has_edge(probe->u, b));
      EXPECT_EQ(std::find(probe->path.begin(), probe->path.end(), b),
                probe->path.end());
    }
  }
  EXPECT_GT(checked, 0);
}

// Degree preservation: PROP-O's defining invariant.
TEST_P(PropOSelection, DegreeMultisetInvariant) {
  auto fx = UnstructuredFixture::make(50, 2009);
  const auto degrees_before = fx.net.graph().degree_multiset();
  // Per-slot degrees must also be unchanged (stronger than the multiset).
  std::vector<std::size_t> per_slot;
  for (const SlotId s : fx.net.graph().active_slots()) {
    per_slot.push_back(fx.net.graph().degree(s));
  }
  Rng rng(8);
  int applied = 0;
  for (int i = 0; i < 300 && applied < 80; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    const auto plan = plan_prop_o(fx.net, probe->u, probe->v, probe->path, 2,
                                  GetParam(), rng);
    if (!plan) continue;
    apply_exchange(fx.net, *plan);
    ++applied;
  }
  ASSERT_GT(applied, 10);
  EXPECT_EQ(fx.net.graph().degree_multiset(), degrees_before);
  std::size_t idx = 0;
  for (const SlotId s : fx.net.graph().active_slots()) {
    EXPECT_EQ(fx.net.graph().degree(s), per_slot[idx++]);
  }
}

// Theorem 1: connectivity persists through arbitrary PROP-O sequences.
TEST_P(PropOSelection, Theorem1ConnectivityPersistence) {
  auto fx = UnstructuredFixture::make(50, 2010);
  Rng rng(9);
  int applied = 0;
  for (int i = 0; i < 400 && applied < 120; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    const auto plan = plan_prop_o(fx.net, probe->u, probe->v, probe->path, 4,
                                  GetParam(), rng);
    if (!plan) continue;
    apply_exchange(fx.net, *plan);
    ASSERT_TRUE(fx.net.graph().active_subgraph_connected())
        << "partition after exchange " << applied;
    ++applied;
  }
  ASSERT_GT(applied, 20);
}

INSTANTIATE_TEST_SUITE_P(Policies, PropOSelection,
                         ::testing::Values(SelectionPolicy::kGreedy,
                                           SelectionPolicy::kRandom),
                         [](const auto& info) {
                           return info.param == SelectionPolicy::kGreedy
                                      ? "Greedy"
                                      : "Random";
                         });

TEST(PropO, GreedySelectionMaximizesVarVersusRandom) {
  auto fx = UnstructuredFixture::make(50, 2011);
  Rng rng(10);
  double greedy_sum = 0.0;
  double random_sum = 0.0;
  int count = 0;
  for (int i = 0; i < 200; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    const auto g = plan_prop_o(fx.net, probe->u, probe->v, probe->path, 2,
                               SelectionPolicy::kGreedy, rng);
    const auto r = plan_prop_o(fx.net, probe->u, probe->v, probe->path, 2,
                               SelectionPolicy::kRandom, rng);
    if (!g || !r) continue;
    greedy_sum += g->var;
    random_sum += r->var;
    // Greedy picks the max-gain subsets, so per-probe it dominates.
    EXPECT_GE(g->var, r->var - 1e-9);
    ++count;
  }
  ASSERT_GT(count, 50);
  EXPECT_GT(greedy_sum, random_sum);
}

TEST(PropO, NoTransferableNeighborsYieldsNullopt) {
  // Overlay: path graph 0-1-2; probing u=0 -> v=2 via path {0,1,2}:
  // u's only neighbor (1) is on the path, so no plan exists.
  Graph phys(3);
  phys.add_edge(0, 1, 1.0);
  phys.add_edge(1, 2, 1.0);
  LatencyOracle oracle(phys);
  LogicalGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Placement p(3, 3);
  for (SlotId s = 0; s < 3; ++s) p.bind(s, s);
  OverlayNetwork net(std::move(g), std::move(p), oracle);
  Rng rng(11);
  const std::vector<SlotId> path{0, 1, 2};
  EXPECT_FALSE(
      plan_prop_o(net, 0, 2, path, 2, SelectionPolicy::kGreedy, rng)
          .has_value());
}

TEST(PropO, PositiveVarExchangeReducesGlobalLinkLatency) {
  auto fx = UnstructuredFixture::make(60, 2012);
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const auto probe = random_probe(fx.net, 2, rng);
    if (!probe) continue;
    const auto plan = plan_prop_o(fx.net, probe->u, probe->v, probe->path, 2,
                                  SelectionPolicy::kGreedy, rng);
    if (!plan || plan->var <= 0.0) continue;
    const double before = fx.net.average_logical_link_latency();
    apply_exchange(fx.net, *plan);
    const double after = fx.net.average_logical_link_latency();
    // Each moved edge (u,a)->(v,a) changes the edge-latency sum by
    // d(v,a)-d(u,a); summed over both disjoint transfer sets that is
    // exactly -var, so positive Var strictly lowers the global mean.
    EXPECT_LT(after, before);
  }
}

}  // namespace
}  // namespace propsim
