#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "topology/graph.h"
#include "topology/latency_oracle.h"
#include "topology/random_graphs.h"
#include "topology/shortest_path.h"
#include "topology/transit_stub.h"

namespace propsim {
namespace {

// -------------------------------------------------------------- Graph ----

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 3.0);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, AddNodeGrows) {
  Graph g(1);
  const NodeId n = g.add_node();
  EXPECT_EQ(n, 1u);
  g.add_edge(0, 1, 1.0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(g.is_connected());
  EXPECT_EQ(g.reachable_count(0), 2u);
  g.add_edge(1, 2, 1.0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, DegreeStatistics) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(0, 3, 3.0);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 6.0);
}

// -------------------------------------------------------- TransitStub ----

TEST(TransitStub, NodeCountsMatchConfig) {
  TransitStubConfig c;
  c.transit_domains = 3;
  c.transit_nodes_per_domain = 2;
  c.stub_domains_per_transit = 2;
  c.nodes_per_stub = 5;
  Rng rng(1);
  const auto topo = make_transit_stub(c, rng);
  EXPECT_EQ(topo.graph.node_count(), c.total_nodes());
  EXPECT_EQ(topo.transit_nodes.size(), 6u);
  EXPECT_EQ(topo.stub_nodes.size(), 60u);
  EXPECT_EQ(topo.stub_domain_count, 12u);
}

TEST(TransitStub, GraphIsConnected) {
  Rng rng(2);
  const auto topo = make_transit_stub(TransitStubConfig::ts_large(), rng);
  EXPECT_TRUE(topo.graph.is_connected());
}

TEST(TransitStub, KindsAreConsistent) {
  Rng rng(3);
  TransitStubConfig c;
  c.transit_domains = 2;
  c.transit_nodes_per_domain = 2;
  c.stub_domains_per_transit = 1;
  c.nodes_per_stub = 4;
  const auto topo = make_transit_stub(c, rng);
  for (const NodeId t : topo.transit_nodes) {
    EXPECT_EQ(topo.kind[t], NodeKind::kTransit);
  }
  for (const NodeId s : topo.stub_nodes) {
    EXPECT_EQ(topo.kind[s], NodeKind::kStub);
  }
  EXPECT_EQ(topo.transit_nodes.size() + topo.stub_nodes.size(),
            topo.graph.node_count());
}

TEST(TransitStub, LatencyClassesRespected) {
  Rng rng(4);
  TransitStubConfig c;
  c.transit_domains = 2;
  c.transit_nodes_per_domain = 3;
  c.stub_domains_per_transit = 2;
  c.nodes_per_stub = 6;
  const auto topo = make_transit_stub(c, rng);
  for (NodeId u = 0; u < topo.graph.node_count(); ++u) {
    for (const Graph::Edge& e : topo.graph.neighbors(u)) {
      const bool ut = topo.kind[u] == NodeKind::kTransit;
      const bool vt = topo.kind[e.to] == NodeKind::kTransit;
      if (ut && vt) {
        EXPECT_DOUBLE_EQ(e.weight, c.transit_transit_ms);
      } else if (ut != vt) {
        EXPECT_DOUBLE_EQ(e.weight, c.stub_transit_ms);
      } else {
        EXPECT_DOUBLE_EQ(e.weight, c.stub_stub_ms);
      }
    }
  }
}

TEST(TransitStub, StubNodesNeverCrossDomains) {
  Rng rng(5);
  TransitStubConfig c;
  c.transit_domains = 2;
  c.transit_nodes_per_domain = 2;
  c.stub_domains_per_transit = 2;
  c.nodes_per_stub = 8;
  const auto topo = make_transit_stub(c, rng);
  for (const NodeId u : topo.stub_nodes) {
    for (const Graph::Edge& e : topo.graph.neighbors(u)) {
      if (topo.kind[e.to] == NodeKind::kStub) {
        EXPECT_EQ(topo.domain[u], topo.domain[e.to]);
      }
    }
  }
}

TEST(TransitStub, PresetsHaveStatedShape) {
  const auto large = TransitStubConfig::ts_large();
  const auto small = TransitStubConfig::ts_small();
  // Similar total size, very different backbone/edge split.
  EXPECT_NEAR(static_cast<double>(large.total_nodes()),
              static_cast<double>(small.total_nodes()),
              0.05 * static_cast<double>(large.total_nodes()));
  EXPECT_GT(large.transit_domains, small.transit_domains);
  EXPECT_LT(large.nodes_per_stub, small.nodes_per_stub);
}

TEST(TransitStub, DeterministicForSeed) {
  Rng r1(99);
  Rng r2(99);
  TransitStubConfig c;
  c.transit_domains = 2;
  c.transit_nodes_per_domain = 2;
  c.stub_domains_per_transit = 1;
  c.nodes_per_stub = 10;
  const auto a = make_transit_stub(c, r1);
  const auto b = make_transit_stub(c, r2);
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (NodeId u = 0; u < a.graph.node_count(); ++u) {
    const auto na = a.graph.neighbors(u);
    const auto nb = b.graph.neighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nb[i].to);
    }
  }
}

// ------------------------------------------------------- RandomGraphs ----

TEST(RandomGraphs, ConnectedRandomGraph) {
  Rng rng(6);
  const Graph g = make_connected_random_graph(50, 120, 1.0, rng);
  EXPECT_EQ(g.node_count(), 50u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.edge_count(), 49u);
  EXPECT_LE(g.edge_count(), 120u);
}

TEST(RandomGraphs, EdgeCountClampsToComplete) {
  Rng rng(7);
  const Graph g = make_connected_random_graph(5, 1000, 1.0, rng);
  EXPECT_EQ(g.edge_count(), 10u);
}

TEST(RandomGraphs, WaxmanConnectedPositiveWeights) {
  Rng rng(8);
  const Graph g = make_waxman_graph(80, 0.3, 0.4, 100.0, 1.0, rng);
  EXPECT_TRUE(g.is_connected());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Graph::Edge& e : g.neighbors(u)) {
      EXPECT_GE(e.weight, 1.0);
    }
  }
}

TEST(RandomGraphs, Ring) {
  const Graph g = make_ring_graph(6, 2.0);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(g.is_connected());
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 2u);
}

// ------------------------------------------------------- ShortestPath ----

TEST(ShortestPath, KnownSmallGraph) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 3, 10.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 5.0);
  const auto d = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
  EXPECT_DOUBLE_EQ(d[3], 4.0);
  EXPECT_DOUBLE_EQ(d[4], 9.0);
}

TEST(ShortestPath, UnreachableIsInfinity) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto d = dijkstra(g, 0);
  EXPECT_TRUE(std::isinf(d[2]));
}

TEST(ShortestPath, PathExtraction) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 10.0);
  const auto tree = dijkstra_tree(g, 0);
  const auto path = extract_path(tree, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
}

TEST(ShortestPath, MatchesBruteForceOnRandomGraphs) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g(12);
    // Random weighted graph, kept connected with a ring.
    for (NodeId u = 0; u < 12; ++u) {
      g.add_edge(u, (u + 1) % 12, rng.uniform_double(1.0, 10.0));
    }
    for (int extra = 0; extra < 8; ++extra) {
      const NodeId u = static_cast<NodeId>(rng.uniform(12));
      NodeId v = static_cast<NodeId>(rng.uniform(11));
      if (v >= u) ++v;
      if (!g.has_edge(u, v)) g.add_edge(u, v, rng.uniform_double(1.0, 10.0));
    }
    // Bellman-Ford as the reference.
    const NodeId src = static_cast<NodeId>(rng.uniform(12));
    std::vector<double> ref(12, std::numeric_limits<double>::infinity());
    ref[src] = 0.0;
    for (int iter = 0; iter < 12; ++iter) {
      for (NodeId u = 0; u < 12; ++u) {
        for (const Graph::Edge& e : g.neighbors(u)) {
          ref[e.to] = std::min(ref[e.to], ref[u] + e.weight);
        }
      }
    }
    const auto d = dijkstra(g, src);
    for (NodeId u = 0; u < 12; ++u) {
      EXPECT_NEAR(d[u], ref[u], 1e-9);
    }
  }
}

// ------------------------------------------------------ LatencyOracle ----

TEST(LatencyOracle, SymmetricAndZeroDiagonal) {
  Rng rng(10);
  const Graph g = make_connected_random_graph(30, 60, 3.0, rng);
  LatencyOracle oracle(g);
  EXPECT_DOUBLE_EQ(oracle.latency(5, 5), 0.0);
  for (int i = 0; i < 20; ++i) {
    const NodeId a = static_cast<NodeId>(rng.uniform(30));
    const NodeId b = static_cast<NodeId>(rng.uniform(30));
    EXPECT_DOUBLE_EQ(oracle.latency(a, b), oracle.latency(b, a));
  }
}

TEST(LatencyOracle, CachesPerSource) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  LatencyOracle oracle(g);
  EXPECT_EQ(oracle.cached_sources(), 0u);
  oracle.latency(0, 2);
  EXPECT_EQ(oracle.cached_sources(), 1u);
  // Reverse direction reuses the cached row.
  oracle.latency(2, 0);
  EXPECT_EQ(oracle.cached_sources(), 1u);
}

TEST(LatencyOracle, AveragePairwiseMatchesManual) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  LatencyOracle oracle(g);
  const std::vector<NodeId> hosts{0, 1, 2};
  // Ordered pairs incl. self: (0+1+3)+(1+0+2)+(3+2+0) = 12 over 9.
  EXPECT_NEAR(oracle.average_pairwise_latency(hosts), 12.0 / 9.0, 1e-12);
}

TEST(LatencyOracle, AveragePhysicalLinkLatency) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  LatencyOracle oracle(g);
  EXPECT_DOUBLE_EQ(oracle.average_physical_link_latency(), 1.5);
}

TEST(LatencyOracle, TriangleInequalityHolds) {
  Rng rng(11);
  const Graph g = make_connected_random_graph(25, 50, 2.0, rng);
  LatencyOracle oracle(g);
  for (int i = 0; i < 100; ++i) {
    const NodeId a = static_cast<NodeId>(rng.uniform(25));
    const NodeId b = static_cast<NodeId>(rng.uniform(25));
    const NodeId c = static_cast<NodeId>(rng.uniform(25));
    EXPECT_LE(oracle.latency(a, c),
              oracle.latency(a, b) + oracle.latency(b, c) + 1e-9);
  }
}

}  // namespace
}  // namespace propsim
