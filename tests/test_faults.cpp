#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/invariant_checker.h"
#include "analysis/lint_rules.h"
#include "app/experiment.h"
#include "chord/dynamic_chord.h"
#include "common/config.h"
#include "core/prop_engine.h"
#include "faults/fault_plan.h"
#include "fixtures.h"
#include "sim/simulator.h"
#include "workload/churn.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

PropParams fault_test_params(PropMode mode) {
  PropParams p;
  p.mode = mode;
  p.nhops = 2;
  p.init_timer_s = 10.0;
  p.max_init_trial = 5;
  p.model_message_delays = true;
  return p;
}

/// Host -> stub-domain map for an UnstructuredFixture's topology.
std::vector<std::uint32_t> host_domains(const TransitStubTopology& topo) {
  std::vector<std::uint32_t> dom(topo.graph.node_count(),
                                 FaultInjector::kNoDomain);
  for (NodeId h = 0; h < topo.graph.node_count(); ++h) {
    if (topo.kind[h] == NodeKind::kStub) dom[h] = topo.domain[h];
  }
  return dom;
}

LintReport run_rule(const std::string& name, const LintContext& ctx) {
  return InvariantChecker(std::vector<std::string>{name}).run(ctx);
}

// ------------------------------------------------------- FaultInjector --

TEST(FaultInjector, ZeroLossNeverDrops) {
  Simulator sim;
  FaultParams params;
  params.latency_jitter = 0.5;  // active, but loss class stays at zero
  FaultInjector faults(sim, params, 7);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(faults.deliver(0, 1));
  }
  EXPECT_EQ(faults.stats().messages, 500u);
  EXPECT_EQ(faults.stats().losses, 0u);
}

TEST(FaultInjector, LossRateRoughlyHolds) {
  Simulator sim;
  FaultParams params;
  params.message_loss = 0.3;
  FaultInjector faults(sim, params, 8);
  const int n = 20000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    if (!faults.deliver(0, 1)) ++lost;
  }
  const double rate = static_cast<double>(lost) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
  EXPECT_EQ(faults.stats().losses, static_cast<std::uint64_t>(lost));
}

TEST(FaultInjector, DeterministicForSeed) {
  Simulator sim;
  FaultParams params;
  params.message_loss = 0.25;
  FaultInjector a(sim, params, 42);
  FaultInjector b(sim, params, 42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.deliver(0, 1), b.deliver(0, 1));
  }
}

TEST(FaultInjector, JitterStretchesWithinBounds) {
  Simulator sim;
  FaultParams params;
  params.latency_jitter = 0.5;
  FaultInjector faults(sim, params, 9);
  for (int i = 0; i < 200; ++i) {
    const double d = faults.jitter(10.0);
    EXPECT_GE(d, 10.0);
    EXPECT_LE(d, 15.0);
  }
  // No jitter configured: identity, no stream draw.
  FaultParams loss_only;
  loss_only.message_loss = 0.1;
  FaultInjector plain(sim, loss_only, 9);
  EXPECT_DOUBLE_EQ(plain.jitter(10.0), 10.0);
}

TEST(FaultInjector, PartitionDropsOnlyCrossingMessagesInsideWindow) {
  auto fx = UnstructuredFixture::make(32, 9100);
  const auto dom = host_domains(fx.topo);
  // Two stub hosts inside the cut domain, one outside it.
  const std::uint32_t cut = dom[fx.net.placement().host_of(0)];
  ASSERT_NE(cut, FaultInjector::kNoDomain);
  NodeId inside_a = kInvalidNode, inside_b = kInvalidNode,
         outside = kInvalidNode;
  for (const NodeId h : fx.topo.stub_nodes) {
    if (dom[h] == cut) {
      (inside_a == kInvalidNode ? inside_a : inside_b) = h;
    } else if (outside == kInvalidNode) {
      outside = h;
    }
  }
  ASSERT_NE(inside_b, kInvalidNode);
  ASSERT_NE(outside, kInvalidNode);

  Simulator sim;
  FaultParams params;
  params.partitions.push_back(PartitionWindow{cut, 10.0, 20.0});
  FaultInjector faults(sim, params, 11);
  faults.set_host_domains(dom);

  EXPECT_FALSE(faults.partitioned(inside_a, outside));  // before window
  sim.schedule_at(15.0, [&] {
    EXPECT_TRUE(faults.partitioned(inside_a, outside));
    EXPECT_TRUE(faults.partitioned(outside, inside_a));  // symmetric
    EXPECT_FALSE(faults.partitioned(inside_a, inside_b));  // intra-domain
    EXPECT_FALSE(faults.deliver(inside_a, outside));
    EXPECT_TRUE(faults.deliver(inside_a, inside_b));
  });
  sim.schedule_at(25.0, [&] {
    EXPECT_FALSE(faults.partitioned(inside_a, outside));  // healed
    EXPECT_TRUE(faults.deliver(inside_a, outside));
  });
  sim.run_until(30.0);
  EXPECT_EQ(faults.stats().partition_drops, 1u);
  EXPECT_EQ(faults.stats().losses, 0u);
}

TEST(FaultInjector, CrashSchedulesThroughExecutor) {
  Simulator sim;
  FaultParams params;
  params.crash_per_negotiation = 0.99;
  FaultInjector faults(sim, params, 12);
  std::vector<SlotId> crashed;
  FnFailureExecutor executor([&](SlotId victim) {
    crashed.push_back(victim);
    return true;
  });
  faults.set_failure_executor(&executor);
  std::optional<SlotId> victim;
  for (int i = 0; i < 64 && !victim; ++i) {
    victim = faults.maybe_schedule_crash(3, 4, 2.0);
  }
  ASSERT_TRUE(victim.has_value());
  EXPECT_TRUE(*victim == 3 || *victim == 4);
  EXPECT_EQ(faults.stats().crashes_scheduled, 1u);
  EXPECT_EQ(faults.stats().crashes_executed, 0u);  // not fired yet
  sim.run_until(3.0);
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0], *victim);
  EXPECT_EQ(faults.stats().crashes_executed, 1u);

  // Probability zero: no draw, no schedule.
  FaultParams none;
  none.message_loss = 0.1;
  FaultInjector quiet(sim, none, 12);
  FnFailureExecutor always([](SlotId) { return true; });
  quiet.set_failure_executor(&always);
  EXPECT_FALSE(quiet.maybe_schedule_crash(3, 4, 2.0).has_value());
}

// ------------------------------------------------ PropEngine hardening --

TEST(PropEngineFaults, LossyNegotiationsStillConverge) {
  auto fx = UnstructuredFixture::make(60, 9200);
  const double before = fx.net.average_logical_link_latency();
  const auto degrees = fx.net.graph().degree_multiset();
  Simulator sim;
  PropEngine engine(fx.net, sim, fault_test_params(PropMode::kPropO), 30);
  FaultParams params;
  params.message_loss = 0.2;
  params.latency_jitter = 0.3;
  FaultInjector faults(sim, params, 31);
  engine.set_faults(&faults);
  engine.start();
  sim.run_until(3000.0);
  // The exchange machinery degrades (timeouts, retransmissions) but
  // still optimizes, and every structural invariant survives.
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_GT(engine.stats().timeouts, 0u);
  EXPECT_GT(engine.stats().retries, 0u);
  EXPECT_LT(fx.net.average_logical_link_latency(), before);
  EXPECT_EQ(fx.net.graph().degree_multiset(), degrees);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
  EXPECT_TRUE(fx.net.placement().validate());
}

TEST(PropEngineFaults, MidExchangeCrashAbortsCleanly) {
  auto fx = UnstructuredFixture::make(48, 9201);
  Simulator sim;
  PropEngine engine(fx.net, sim, fault_test_params(PropMode::kPropG), 32);
  GnutellaConfig gcfg;
  ChurnParams cparams;  // all-zero rates: crash executor only
  ChurnProcess churn(fx.net, sim, &engine, gcfg, cparams, {}, 33);
  FaultParams params;
  params.message_loss = 0.05;
  params.crash_per_negotiation = 0.3;
  FaultInjector faults(sim, params, 34);
  engine.set_faults(&faults);
  churn.set_faults(&faults);
  faults.set_failure_executor(&churn);
  engine.start();
  sim.run_until(2000.0);
  EXPECT_GT(faults.stats().crashes_executed, 0u);
  EXPECT_GT(engine.stats().aborted_mid_commit, 0u);
  EXPECT_GT(engine.stats().exchanges, 0u);
  // Crashes removed peers; survivor repair kept the overlay whole and
  // the placement a bijection.
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
  EXPECT_TRUE(fx.net.placement().validate());
}

TEST(DynamicChordFaults, StabilizationConvergesUnderLoss) {
  Rng rng(9300);
  DynamicChord chord((DynamicChordConfig()));
  std::set<ChordId> used;
  auto fresh_id = [&] {
    ChordId id;
    do {
      id = rng.next();
    } while (!used.insert(id).second);
    return id;
  };
  std::vector<SlotId> members{chord.bootstrap(fresh_id())};
  while (chord.active_count() < 32) {
    const SlotId gateway = members[static_cast<std::size_t>(
        rng.uniform(members.size()))];
    members.push_back(chord.join(fresh_id(), gateway));
    chord.stabilize_all(2);
  }
  chord.stabilize_all(2);

  // Crash a batch, then repair over a 30%-lossy network: rounds are
  // skipped when the opening read is dropped, so convergence takes more
  // sweeps but must still land on a consistent ring.
  Rng pick(9301);
  for (int i = 0; i < 6; ++i) {
    SlotId victim;
    do {
      victim = static_cast<SlotId>(pick.uniform(chord.slot_count()));
    } while (!chord.is_active(victim));
    chord.fail(victim);
  }
  Rng loss(9302);
  std::uint64_t dropped = 0;
  chord.set_message_filter([&](SlotId, SlotId) {
    const bool ok = !loss.bernoulli(0.3);
    if (!ok) ++dropped;
    return ok;
  });
  chord.stabilize_all(12);
  EXPECT_GT(dropped, 0u);
  EXPECT_TRUE(chord.ring_consistent());
  // Reliable again: an empty filter restores the fast path.
  chord.set_message_filter({});
  chord.stabilize_all(1);
  EXPECT_TRUE(chord.ring_consistent());
}

// -------------------------------------------------- experiment wiring --

ExperimentSpec parse_spec(const std::string& text) {
  const SpecResult parsed = ExperimentSpec::from_config(Config::parse(text));
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  return parsed.spec();
}

const char kSmallBase[] =
    "nodes = 64\nhorizon = 400\nsample_interval = 100\n"
    "queries = 300\ninit_timer = 10\nprotocol = prop-o\n"
    "model_message_delays = true\n";

TEST(ExperimentFaults, ZeroLossKeyIsBitIdenticalToNoKey) {
  // The acceptance contract: fault_loss = 0 (and no other fault knob)
  // never constructs an injector, so results match a config without any
  // fault key exactly — same RNG stream, same event order, same bytes.
  const auto plain = run_experiment(parse_spec(kSmallBase));
  const auto zeroed = run_experiment(parse_spec(
      std::string(kSmallBase) + "fault_loss = 0\nfault_jitter = 0\n"));
  EXPECT_EQ(plain.exchanges, zeroed.exchanges);
  EXPECT_EQ(plain.attempts, zeroed.attempts);
  EXPECT_EQ(plain.control_messages, zeroed.control_messages);
  EXPECT_EQ(plain.commit_conflicts, zeroed.commit_conflicts);
  EXPECT_DOUBLE_EQ(plain.initial_value, zeroed.initial_value);
  EXPECT_DOUBLE_EQ(plain.final_value, zeroed.final_value);
  EXPECT_EQ(zeroed.fault_messages, 0u);
}

TEST(ExperimentFaults, LossSurfacesInCountersV3) {
  const auto result = run_experiment(
      parse_spec(std::string(kSmallBase) + "fault_loss = 0.2\n"));
  EXPECT_GT(result.fault_messages, 0u);
  EXPECT_GT(result.fault_losses, 0u);
  EXPECT_GT(result.timeouts, 0u);
  EXPECT_TRUE(result.connected);
  bool timeouts_seen = false;
  for (const auto& [name, value] : result.counters()) {
    if (name == "timeouts") {
      timeouts_seen = true;
      EXPECT_EQ(value, result.timeouts);
    }
  }
  EXPECT_TRUE(timeouts_seen);
}

TEST(ExperimentFaults, PartitionMakesLookupsUnreachable) {
  const auto result = run_experiment(parse_spec(
      std::string(kSmallBase) +
      "lookup_rate = 4\n"
      "fault_partition_domain = auto\n"
      "fault_partition_start = 100\nfault_partition_end = 300\n"));
  EXPECT_GT(result.lookups_issued, 0u);
  EXPECT_GT(result.lookups_unreachable, 0u);
  EXPECT_GT(result.fault_partition_drops, 0u);
  // The window closes before the horizon: the overlay ends connected.
  EXPECT_TRUE(result.connected);
}

TEST(ExperimentFaults, InvalidFaultKeysAreRejectedTogether) {
  const SpecResult bad = ExperimentSpec::from_config(Config::parse(
      std::string(kSmallBase) +
      "fault_loss = 1.5\n"
      "fault_crash = 0.1\noverlay = chord\nprotocol = prop-g\n"
      "fault_partition_domain = auto\n"));
  ASSERT_FALSE(bad.ok());
  const std::string report = bad.error_report();
  EXPECT_NE(report.find("fault_loss"), std::string::npos);
  EXPECT_NE(report.find("fault_crash"), std::string::npos);
  EXPECT_NE(report.find("fault_partition"), std::string::npos);
  // Partition on a waxman topology is rejected too.
  const SpecResult waxman = ExperimentSpec::from_config(Config::parse(
      std::string(kSmallBase) +
      "topology = waxman\nfault_partition_domain = 0\n"
      "fault_partition_start = 10\nfault_partition_end = 20\n"));
  EXPECT_FALSE(waxman.ok());
}

// ------------------------------------------------------- faults smoke --
// Run via its own ctest entry (faults_smoke, tier1): a fixed-seed lossy
// run with a partition window, then every invariant-lint rule the
// scenario is expected to preserve, in-process.

TEST(FaultsSmoke, PropOLossAndPartitionKeepInvariants) {
  auto fx = UnstructuredFixture::make(48, 9400);
  const SnapshotGraph baseline = snapshot_of(fx.net.graph());
  Simulator sim;
  PropEngine engine(fx.net, sim, fault_test_params(PropMode::kPropO), 50);
  FaultParams params;
  params.message_loss = 0.05;
  params.latency_jitter = 0.2;
  const std::uint32_t cut =
      fx.topo.domain[fx.net.placement().host_of(0)];
  params.partitions.push_back(PartitionWindow{cut, 400.0, 800.0});
  FaultInjector faults(sim, params, 51);
  faults.set_host_domains(host_domains(fx.topo));
  engine.set_faults(&faults);
  faults.start();
  engine.start();
  sim.run_until(2000.0);

  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_GT(faults.stats().losses + faults.stats().partition_drops, 0u);
  const SnapshotGraph snap = snapshot_of(fx.net.graph());
  const LintContext ctx{.graph = &snap,
                        .baseline = &baseline,
                        .placement = &fx.net.placement()};
  for (const char* rule :
       {"edge-range", "no-self-loops", "no-parallel-edges", "connectivity",
        "degree-conservation", "placement-bijection"}) {
    const LintReport report = run_rule(rule, ctx);
    EXPECT_TRUE(report.passed()) << rule << ":\n" << report.to_string();
  }
}

TEST(FaultsSmoke, PropGWithCrashesKeepsPlacementSound) {
  auto fx = UnstructuredFixture::make(48, 9401);
  Simulator sim;
  PropEngine engine(fx.net, sim, fault_test_params(PropMode::kPropG), 52);
  GnutellaConfig gcfg;
  ChurnParams cparams;
  ChurnProcess churn(fx.net, sim, &engine, gcfg, cparams, {}, 53);
  FaultParams params;
  params.message_loss = 0.05;
  params.crash_per_negotiation = 0.2;
  FaultInjector faults(sim, params, 54);
  engine.set_faults(&faults);
  churn.set_faults(&faults);
  faults.set_failure_executor(&churn);
  engine.start();
  sim.run_until(2000.0);

  EXPECT_GT(faults.stats().crashes_executed, 0u);
  // Crashes change degrees (repair re-dials), so degree conservation is
  // out of scope here; structure and placement must stay sound.
  const SnapshotGraph snap = snapshot_of(fx.net.graph());
  const LintContext ctx{.graph = &snap,
                        .placement = &fx.net.placement()};
  for (const char* rule : {"edge-range", "no-self-loops",
                           "no-parallel-edges", "connectivity",
                           "placement-bijection"}) {
    const LintReport report = run_rule(rule, ctx);
    EXPECT_TRUE(report.passed()) << rule << ":\n" << report.to_string();
  }
}

}  // namespace
}  // namespace propsim
