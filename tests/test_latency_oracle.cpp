// Latency-oracle engine tests: the hierarchical transit-stub engine must
// be bit-exact against full-graph Dijkstra, the fallback's LRU cache must
// honor its bound, and both engines must survive concurrent queries (this
// file runs under the tsan-concurrency preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "topology/latency_oracle.h"
#include "topology/random_graphs.h"
#include "topology/shortest_path.h"
#include "topology/transit_stub.h"

namespace propsim {
namespace {

/// A small transit-stub instance so per-test Dijkstra baselines stay
/// cheap; the preset-sized equivalence runs sample fewer sources.
TransitStubConfig tiny_ts() {
  TransitStubConfig config;
  config.transit_domains = 3;
  config.transit_nodes_per_domain = 3;
  config.stub_domains_per_transit = 2;
  config.nodes_per_stub = 8;
  return config;
}

// ------------------------------------------------- hierarchical engine ----

TEST(HierarchicalOracle, ExactOnTinyGraphAllPairs) {
  Rng rng(7);
  const TransitStubTopology topo = make_transit_stub(tiny_ts(), rng);
  const LatencyOracle oracle(topo);
  ASSERT_TRUE(oracle.hierarchical());
  EXPECT_EQ(oracle.cached_sources(), 0u);

  const std::size_t n = topo.graph.node_count();
  for (NodeId src = 0; src < n; ++src) {
    const std::vector<double> expected = dijkstra(topo.graph, src);
    for (NodeId dst = 0; dst < n; ++dst) {
      // Bit-exact: GT-ITM latency classes sum to integer-valued doubles.
      ASSERT_EQ(oracle.latency(src, dst), expected[dst])
          << "src=" << src << " dst=" << dst;
    }
  }
}

TEST(HierarchicalOracle, ExactOnPaperPresetsAcrossSeeds) {
  for (const bool small : {false, true}) {
    for (const std::uint64_t seed : {1ull, 20070901ull, 0xdecafbadull}) {
      Rng rng(seed);
      const TransitStubTopology topo = make_transit_stub(
          small ? TransitStubConfig::ts_small() : TransitStubConfig::ts_large(),
          rng);
      const LatencyOracle oracle(topo);
      ASSERT_TRUE(oracle.hierarchical());

      Rng pick(seed ^ 0x5bf03635u);
      for (int s = 0; s < 6; ++s) {
        const NodeId src = pick.pick(s % 2 == 0 ? topo.stub_nodes
                                                : topo.transit_nodes);
        const std::vector<double> expected = dijkstra(topo.graph, src);
        const DistanceRow row = oracle.distances_from(src);
        ASSERT_EQ(row.size(), expected.size());
        for (NodeId dst = 0; dst < expected.size(); ++dst) {
          ASSERT_EQ(row[dst], expected[dst])
              << (small ? "ts-small" : "ts-large") << " seed=" << seed
              << " src=" << src << " dst=" << dst;
        }
      }
    }
  }
}

TEST(HierarchicalOracle, RandomPointQueriesMatchRows) {
  Rng rng(42);
  const TransitStubTopology topo = make_transit_stub(tiny_ts(), rng);
  const LatencyOracle oracle(topo);
  Rng qrng(43);
  for (int i = 0; i < 2000; ++i) {
    const NodeId a = qrng.pick(topo.stub_nodes);
    const NodeId b = qrng.pick(topo.stub_nodes);
    EXPECT_EQ(oracle.latency(a, b), oracle.latency(b, a));
    EXPECT_EQ(oracle.latency(a, b), oracle.distances_from(a)[b]);
  }
  EXPECT_EQ(oracle.latency(5, 5), 0.0);
}

// -------------------------------------------------- fallback LRU cache ----

TEST(FallbackOracle, LruCacheHonorsBound) {
  Rng rng(11);
  const Graph g = make_waxman_graph(200, 0.4, 0.2, 100.0, 1.0, rng);
  LatencyOracleOptions options;
  options.max_cached_rows = 8;
  const LatencyOracle oracle(g, options);
  ASSERT_FALSE(oracle.hierarchical());

  // Query far more distinct sources than the cache holds.
  for (NodeId src = 0; src < 100; ++src) {
    (void)oracle.latency(src, (src + 57) % 200);
    EXPECT_LE(oracle.cached_sources(), 8u);
  }
  EXPECT_LE(oracle.cached_sources(), 8u);
  EXPECT_GT(oracle.cached_sources(), 0u);

  // Evicted rows recompute to the same values.
  const std::vector<double> expected = dijkstra(g, 0);
  const DistanceRow row = oracle.distances_from(0);
  for (NodeId dst = 0; dst < 200; ++dst) EXPECT_EQ(row[dst], expected[dst]);
}

TEST(FallbackOracle, RowSurvivesEviction) {
  Rng rng(12);
  const Graph g = make_waxman_graph(64, 0.4, 0.2, 100.0, 1.0, rng);
  LatencyOracleOptions options;
  options.max_cached_rows = 2;
  const LatencyOracle oracle(g, options);

  const DistanceRow held = oracle.distances_from(0);
  const std::vector<double> expected = dijkstra(g, 0);
  // Push enough other sources through to evict source 0.
  for (NodeId src = 1; src < 32; ++src) (void)oracle.distances_from(src);
  // The held row is shared-ownership: still valid and still correct.
  ASSERT_EQ(held.size(), expected.size());
  for (NodeId dst = 0; dst < held.size(); ++dst) {
    EXPECT_EQ(held[dst], expected[dst]);
  }
}

TEST(FallbackOracle, WarmIsAPurePrefetch) {
  Rng rng(13);
  const Graph g = make_waxman_graph(96, 0.4, 0.2, 100.0, 1.0, rng);
  LatencyOracleOptions options;
  options.max_cached_rows = 16;
  const LatencyOracle oracle(g, options);

  ThreadPool pool(4);
  std::vector<NodeId> sources;
  for (NodeId s = 0; s < 40; ++s) sources.push_back(s);
  oracle.warm(sources, pool);
  // Prefetching more rows than the bound still respects the bound...
  EXPECT_LE(oracle.cached_sources(), 16u);
  // ...and queries after the prefetch agree with cold Dijkstra.
  for (NodeId s = 0; s < 40; s += 7) {
    const std::vector<double> expected = dijkstra(g, s);
    EXPECT_EQ(oracle.latency(s, 95), expected[95]);
  }
}

// ------------------------------------------------------- concurrency ----

TEST(LatencyOracleConcurrency, FallbackParallelQueriesAreConsistent) {
  Rng rng(21);
  const Graph g = make_waxman_graph(128, 0.4, 0.2, 100.0, 1.0, rng);
  LatencyOracleOptions options;
  options.max_cached_rows = 8;  // force eviction races
  const LatencyOracle oracle(g, options);

  // Ground truth before going parallel.
  std::vector<std::vector<double>> truth;
  for (NodeId s = 0; s < 32; ++s) truth.push_back(dijkstra(g, s));

  ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  pool.parallel_for(512, [&](std::size_t task) {
    const NodeId src = static_cast<NodeId>(task % 32);
    const NodeId dst = static_cast<NodeId>((task * 37) % 32);
    // latency() canonicalizes on the smaller id, so the expected value
    // comes from that row (dijkstra(a)[b] and dijkstra(b)[a] can differ
    // in the last ulp on real-valued weights).
    const NodeId lo = std::min(src, dst);
    const NodeId hi = std::max(src, dst);
    if (oracle.latency(src, dst) != (lo == hi ? 0.0 : truth[lo][hi])) {
      ++mismatches;
    }
    const NodeId far = static_cast<NodeId>((task * 53) % 128);
    const DistanceRow row = oracle.distances_from(src);
    if (row[far] != truth[src][far]) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(oracle.cached_sources(), 8u);
}

TEST(LatencyOracleConcurrency, HierarchicalParallelQueriesAreConsistent) {
  Rng rng(22);
  const TransitStubTopology topo = make_transit_stub(tiny_ts(), rng);
  const LatencyOracle oracle(topo);

  std::vector<std::vector<double>> truth;
  for (NodeId s = 0; s < 16; ++s) truth.push_back(dijkstra(topo.graph, s));

  ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  pool.parallel_for(1024, [&](std::size_t task) {
    const NodeId src = static_cast<NodeId>(task % 16);
    const NodeId dst =
        static_cast<NodeId>((task * 131) % topo.graph.node_count());
    if (oracle.latency(src, dst) != truth[src][dst]) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// ----------------------------------------------------------- helpers ----

TEST(LatencyOracle, AveragePairwiseMatchesBetweenEngines) {
  Rng rng(31);
  const TransitStubTopology topo = make_transit_stub(tiny_ts(), rng);
  const LatencyOracle hier(topo);
  const LatencyOracle dijk(topo.graph);

  std::vector<NodeId> hosts;
  Rng pick(32);
  for (int i = 0; i < 24; ++i) hosts.push_back(pick.pick(topo.stub_nodes));
  EXPECT_DOUBLE_EQ(hier.average_pairwise_latency(hosts),
                   dijk.average_pairwise_latency(hosts));
  EXPECT_DOUBLE_EQ(hier.average_physical_link_latency(),
                   dijk.average_physical_link_latency());
}

}  // namespace
}  // namespace propsim
