// Randomized stress suite: long random operation sequences against the
// core mutable structures, auditing the full invariants after every
// step. These are the tests that catch bookkeeping bugs the directed
// suites never think to write.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/indexed_priority_queue.h"
#include "common/rng.h"
#include "core/neighbor_queue.h"
#include "overlay/logical_graph.h"
#include "overlay/placement.h"
#include "sim/simulator.h"

namespace propsim {
namespace {

TEST(FuzzLogicalGraph, RandomOpsKeepModelInSync) {
  Rng rng(71);
  const std::size_t slots = 24;
  LogicalGraph g(slots);
  // Reference model: adjacency matrix + active flags.
  std::vector<std::vector<bool>> edge(slots, std::vector<bool>(slots, false));
  std::vector<bool> active(slots, true);

  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng.uniform(4));
    const SlotId a = static_cast<SlotId>(rng.uniform(slots));
    const SlotId b = static_cast<SlotId>(rng.uniform(slots));
    switch (op) {
      case 0:  // add edge
        if (a != b && active[a] && active[b] && !edge[a][b]) {
          g.add_edge(a, b);
          edge[a][b] = edge[b][a] = true;
        }
        break;
      case 1:  // remove edge
        if (a != b && edge[a][b]) {
          g.remove_edge(a, b);
          edge[a][b] = edge[b][a] = false;
        }
        break;
      case 2:  // deactivate
        if (active[a] && g.active_count() > 2) {
          g.deactivate_slot(a);
          active[a] = false;
          for (std::size_t x = 0; x < slots; ++x) {
            edge[a][x] = edge[x][a] = false;
          }
        }
        break;
      case 3:  // reactivate
        if (!active[a]) {
          g.reactivate_slot(a);
          active[a] = true;
        }
        break;
    }
    // Periodic audit against the reference model.
    if (step % 97 == 0) {
      std::size_t edges = 0;
      for (std::size_t x = 0; x < slots; ++x) {
        ASSERT_EQ(g.is_active(static_cast<SlotId>(x)), active[x]);
        for (std::size_t y = x + 1; y < slots; ++y) {
          ASSERT_EQ(g.has_edge(static_cast<SlotId>(x),
                               static_cast<SlotId>(y)),
                    edge[x][y]);
          if (edge[x][y]) ++edges;
        }
      }
      ASSERT_EQ(g.edge_count(), edges);
    }
  }
}

TEST(FuzzPlacement, RandomBindSwapUnbindStaysBijective) {
  Rng rng(73);
  const std::size_t slots = 20;
  const std::size_t hosts = 40;
  Placement p(slots, hosts);
  std::vector<SlotId> bound;

  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.uniform(3));
    if (op == 0) {  // bind a free slot to a free host
      SlotId s = static_cast<SlotId>(rng.uniform(slots));
      NodeId h = static_cast<NodeId>(rng.uniform(hosts));
      if (!p.slot_bound(s) && !p.host_bound(h)) {
        p.bind(s, h);
        bound.push_back(s);
      }
    } else if (op == 1 && !bound.empty()) {  // unbind
      const std::size_t i = static_cast<std::size_t>(rng.uniform(bound.size()));
      p.unbind(bound[i]);
      bound[i] = bound.back();
      bound.pop_back();
    } else if (op == 2 && bound.size() >= 2) {  // swap
      const SlotId a =
          bound[static_cast<std::size_t>(rng.uniform(bound.size()))];
      const SlotId b =
          bound[static_cast<std::size_t>(rng.uniform(bound.size()))];
      if (a != b) p.swap_slots(a, b);
    }
    ASSERT_TRUE(p.validate());
    ASSERT_EQ(p.bound_count(), bound.size());
  }
}

TEST(FuzzIndexedPriorityQueue, MirrorsMultimapSemantics) {
  Rng rng(79);
  const std::size_t keys = 64;
  IndexedPriorityQueue<double> q(keys);
  std::vector<double> prio(keys, 0.0);
  std::vector<bool> in(keys, false);

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.uniform(3));
    const std::size_t k = static_cast<std::size_t>(rng.uniform(keys));
    if (op == 0) {
      const double v = rng.uniform_double();
      q.push_or_update(k, v);
      prio[k] = v;
      in[k] = true;
    } else if (op == 1) {
      ASSERT_EQ(q.erase(k), in[k]);
      in[k] = false;
    } else if (!q.empty()) {
      const std::size_t top = q.top_key();
      ASSERT_TRUE(in[top]);
      // Top must match the model's minimum.
      const double best = prio[top];
      for (std::size_t x = 0; x < keys; ++x) {
        if (in[x]) {
          ASSERT_LE(best, prio[x]);
        }
      }
      q.pop();
      in[top] = false;
    }
    ASSERT_EQ(q.size(),
              static_cast<std::size_t>(std::count(in.begin(), in.end(), true)));
  }
}

TEST(FuzzNeighborQueue, OperationsNeverLoseMembers) {
  Rng rng(83);
  NeighborQueue q;
  std::set<SlotId> members;
  std::vector<SlotId> initial{1, 2, 3, 4, 5};
  q.initialize(initial, rng);
  members.insert(initial.begin(), initial.end());

  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.uniform(4));
    const SlotId s = static_cast<SlotId>(rng.uniform(12));
    switch (op) {
      case 0:
        if (!members.contains(s)) {
          q.add_front(s);
          members.insert(s);
          // A fresh neighbor gets maximum priority: it is the front.
          ASSERT_EQ(*q.front(), s);
        }
        break;
      case 1:
        q.remove(s);
        members.erase(s);
        break;
      case 2:
        q.on_success(s);  // no-op when absent
        break;
      case 3:
        q.on_failure(s);
        break;
    }
    ASSERT_EQ(q.size(), members.size());
    if (!members.empty()) {
      ASSERT_TRUE(members.contains(*q.front()));
    } else {
      ASSERT_FALSE(q.front().has_value());
    }
    for (const SlotId m : members) ASSERT_TRUE(q.contains(m));
  }
}

TEST(FuzzSimulator, RandomScheduleCancelRespectsOrdering) {
  Rng rng(89);
  Simulator sim;
  std::vector<EventId> live;
  double last_fired = -1.0;
  int fired = 0;
  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng.uniform(3));
    if (op == 0 || live.empty()) {
      const double when = sim.now() + rng.uniform_double(0.0, 50.0);
      live.push_back(sim.schedule_at(when, [&, when] {
        ASSERT_GE(when, last_fired);
        last_fired = when;
        ++fired;
      }));
    } else if (op == 1) {
      const std::size_t i = static_cast<std::size_t>(rng.uniform(live.size()));
      sim.cancel(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else {
      sim.run_until(sim.now() + rng.uniform_double(0.0, 10.0));
    }
  }
  sim.run_all();
  EXPECT_GT(fired, 100);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace propsim
