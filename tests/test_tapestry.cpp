#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tapestry/tapestry.h"
#include "topology/random_graphs.h"

namespace propsim {
namespace {

TEST(HexId, DigitAndPrefixHelpers) {
  const std::uint64_t id = 0x0123456789ABCDEFULL;
  EXPECT_EQ(hex_digit(id, 0), 0x0u);
  EXPECT_EQ(hex_digit(id, 1), 0x1u);
  EXPECT_EQ(hex_digit(id, 15), 0xFu);
  EXPECT_EQ(hex_shared_prefix(id, id), 16u);
  EXPECT_EQ(hex_shared_prefix(0x0123ULL << 48, 0x0124ULL << 48), 3u);
  EXPECT_EQ(id_ring_distance(0, ~std::uint64_t{0}), 1u);
}

class TapestryTest : public ::testing::Test {
 protected:
  static TapestryNetwork make(std::size_t n, std::uint64_t seed,
                              std::size_t redundancy = 1) {
    Rng rng(seed);
    TapestryConfig cfg;
    cfg.entries_per_cell = redundancy;
    return TapestryNetwork::build_random(n, cfg, rng);
  }
};

TEST_F(TapestryTest, TableEntriesHaveCorrectPrefixAndDigit) {
  const auto net = make(100, 1);
  for (SlotId s = 0; s < 100; ++s) {
    for (std::size_t level = 0; level < kHexDigits; ++level) {
      for (std::size_t d = 0; d < kHexBase; ++d) {
        const SlotId t = net.table_entry(s, level, d);
        if (t == kInvalidSlot) continue;
        EXPECT_EQ(hex_shared_prefix(net.id_of(s), net.id_of(t)), level);
        EXPECT_EQ(hex_digit(net.id_of(t), level), d);
      }
    }
  }
}

TEST_F(TapestryTest, TablesAreComplete) {
  // Global-knowledge build: a cell is empty iff no eligible node exists.
  const auto net = make(60, 2);
  for (SlotId s = 0; s < 60; ++s) {
    for (std::size_t level = 0; level < 3; ++level) {
      for (std::size_t d = 0; d < kHexBase; ++d) {
        bool exists = false;
        for (SlotId t = 0; t < 60; ++t) {
          if (t != s &&
              hex_shared_prefix(net.id_of(s), net.id_of(t)) == level &&
              hex_digit(net.id_of(t), level) == d) {
            exists = true;
            break;
          }
        }
        EXPECT_EQ(net.table_entry(s, level, d) != kInvalidSlot, exists);
      }
    }
  }
}

TEST_F(TapestryTest, RootIsSourceIndependent) {
  const auto net = make(128, 3);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const TapestryId key = rng.next();
    const SlotId root = net.root_of(key);
    for (int src_trial = 0; src_trial < 8; ++src_trial) {
      const SlotId src = static_cast<SlotId>(rng.uniform(128));
      const auto path = net.lookup_path(src, key);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), src);
      EXPECT_EQ(path.back(), root) << "key " << key << " from " << src;
    }
  }
}

TEST_F(TapestryTest, OwnIdRootsAtSelf) {
  const auto net = make(64, 5);
  for (SlotId s = 0; s < 64; ++s) {
    EXPECT_EQ(net.root_of(net.id_of(s)), s);
    EXPECT_EQ(net.lookup_path((s + 11) % 64, net.id_of(s)).back(), s);
  }
}

TEST_F(TapestryTest, HopsBoundedByDigits) {
  const auto net = make(512, 6);
  Rng rng(7);
  double total = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const SlotId src = static_cast<SlotId>(rng.uniform(512));
    const auto path = net.lookup_path(src, rng.next());
    EXPECT_LE(path.size() - 1, kHexDigits);
    total += static_cast<double>(path.size() - 1);
  }
  // ~log16(512) ≈ 2.25 expected.
  EXPECT_LE(total / trials, 5.0);
}

TEST_F(TapestryTest, SurrogateRoutingOnBoundaryKeys) {
  const auto net = make(64, 8);
  Rng rng(9);
  for (const TapestryId key :
       {TapestryId{0}, ~TapestryId{0}, TapestryId{0x8000000000000000},
        TapestryId{0x7FFFFFFFFFFFFFFF}}) {
    const SlotId root = net.root_of(key);
    for (int i = 0; i < 8; ++i) {
      const SlotId src = static_cast<SlotId>(rng.uniform(64));
      EXPECT_EQ(net.lookup_path(src, key).back(), root);
    }
  }
}

TEST_F(TapestryTest, RedundantCellsKeepOrderAndSize) {
  const auto net = make(200, 10, /*redundancy=*/3);
  for (SlotId s = 0; s < 200; ++s) {
    for (std::size_t d = 0; d < kHexBase; ++d) {
      const auto cell = net.cell(s, 0, d);
      EXPECT_LE(cell.size(), 3u);
      for (std::size_t i = 1; i < cell.size(); ++i) {
        EXPECT_LE(id_ring_distance(net.id_of(cell[i - 1]), net.id_of(s)),
                  id_ring_distance(net.id_of(cell[i]), net.id_of(s)));
      }
    }
  }
}

TEST_F(TapestryTest, LogicalGraphConnected) {
  const auto net = make(100, 11);
  const LogicalGraph g = net.to_logical_graph();
  EXPECT_TRUE(g.active_subgraph_connected());
  EXPECT_GE(g.min_active_degree(), 1u);
}

TEST_F(TapestryTest, DeterministicForSeed) {
  const auto a = make(40, 12);
  const auto b = make(40, 12);
  for (SlotId s = 0; s < 40; ++s) {
    EXPECT_EQ(a.id_of(s), b.id_of(s));
    EXPECT_EQ(a.table_entry(s, 0, 5), b.table_entry(s, 0, 5));
  }
}

TEST_F(TapestryTest, TinyNetwork) {
  const auto net = make(2, 13);
  EXPECT_EQ(net.lookup_path(0, net.id_of(1)).back(), 1u);
  EXPECT_EQ(net.lookup_path(1, net.id_of(0)).back(), 0u);
}

TEST(TapestryProximity, ClosestEntryWinsAndRoutingHolds) {
  Rng rng(14);
  const Graph phys = make_connected_random_graph(120, 300, 3.0, rng);
  LatencyOracle oracle(phys);
  auto net = TapestryNetwork::build_random(100, TapestryConfig{}, rng);
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 100; ++h) hosts.push_back(h);

  auto avg_entry_latency = [&] {
    double sum = 0.0;
    std::size_t count = 0;
    for (SlotId s = 0; s < 100; ++s) {
      for (std::size_t level = 0; level < kHexDigits; ++level) {
        for (std::size_t d = 0; d < kHexBase; ++d) {
          const SlotId t = net.table_entry(s, level, d);
          if (t == kInvalidSlot) continue;
          sum += oracle.latency(hosts[s], hosts[t]);
          ++count;
        }
      }
    }
    return sum / static_cast<double>(count);
  };

  const double before = avg_entry_latency();
  net.apply_proximity(hosts, oracle);
  EXPECT_LT(avg_entry_latency(), before);

  // Roots are table-independent; routing still lands on them.
  Rng qrng(15);
  for (int i = 0; i < 150; ++i) {
    const SlotId src = static_cast<SlotId>(qrng.uniform(100));
    const TapestryId key = qrng.next();
    EXPECT_EQ(net.lookup_path(src, key).back(), net.root_of(key));
  }
}

TEST(TapestryOverlay, BindsHosts) {
  Rng rng(16);
  const Graph phys = make_connected_random_graph(60, 140, 2.0, rng);
  LatencyOracle oracle(phys);
  const auto net = TapestryNetwork::build_random(40, TapestryConfig{}, rng);
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 40; ++h) hosts.push_back(h);
  const OverlayNetwork overlay = make_tapestry_overlay(net, hosts, oracle);
  EXPECT_EQ(overlay.size(), 40u);
  EXPECT_TRUE(overlay.placement().validate());
  EXPECT_TRUE(overlay.graph().active_subgraph_connected());
}

}  // namespace
}  // namespace propsim
