#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/traffic.h"

namespace propsim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(9.0, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports failure
  sim.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.schedule_at(3.0, [&] { ++count; });
  sim.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, PendingCountsExcludeCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(TrafficCounter, CountsByNodeAndKind) {
  TrafficCounter t(4);
  t.count(0, MessageKind::kWalk, 2);
  t.count(1, MessageKind::kProbe);
  t.count(0, MessageKind::kLookup, 5);
  EXPECT_EQ(t.total(), 8u);
  EXPECT_EQ(t.by_node(0), 7u);
  EXPECT_EQ(t.by_node(1), 1u);
  EXPECT_EQ(t.by_kind(MessageKind::kWalk), 2u);
  EXPECT_EQ(t.by_kind(MessageKind::kLookup), 5u);
  EXPECT_EQ(t.control_total(), 3u);
}

TEST(TrafficCounter, ResetClearsEverything) {
  TrafficCounter t(2);
  t.count(0, MessageKind::kNotify, 3);
  t.reset();
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.by_node(0), 0u);
  EXPECT_EQ(t.by_kind(MessageKind::kNotify), 0u);
}

}  // namespace
}  // namespace propsim
