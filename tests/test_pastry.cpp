#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pastry/pastry.h"
#include "topology/random_graphs.h"

namespace propsim {
namespace {

// ------------------------------------------------------- id helpers ----

TEST(PastryId, DigitExtraction) {
  const PastryId id = 0x123456789ABCDEF0ULL;
  EXPECT_EQ(pastry_digit(id, 0), 0x1u);
  EXPECT_EQ(pastry_digit(id, 1), 0x2u);
  EXPECT_EQ(pastry_digit(id, 15), 0x0u);
}

TEST(PastryId, SharedPrefix) {
  EXPECT_EQ(shared_prefix_len(0x1234ULL << 48, 0x1235ULL << 48), 3u);
  EXPECT_EQ(shared_prefix_len(0xFULL << 60, 0x1ULL << 60), 0u);
  EXPECT_EQ(shared_prefix_len(42, 42), 16u);
}

TEST(PastryId, RingDistanceSymmetricAndWrapping) {
  EXPECT_EQ(ring_distance(10, 14), 4u);
  EXPECT_EQ(ring_distance(14, 10), 4u);
  EXPECT_EQ(ring_distance(0, ~PastryId{0}), 1u);
}

// ---------------------------------------------------------- network ----

class PastryTest : public ::testing::Test {
 protected:
  static PastryNetwork make(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    return PastryNetwork::build_random(n, PastryConfig{}, rng);
  }
};

TEST_F(PastryTest, IdsDistinct) {
  const auto net = make(100, 1);
  std::set<PastryId> ids;
  for (SlotId s = 0; s < 100; ++s) ids.insert(net.id_of(s));
  EXPECT_EQ(ids.size(), 100u);
}

TEST_F(PastryTest, OwnerIsRingNearest) {
  const auto net = make(64, 2);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const PastryId key = rng.next();
    const SlotId owner = net.owner_of(key);
    const PastryId best = ring_distance(net.id_of(owner), key);
    for (SlotId s = 0; s < 64; ++s) {
      EXPECT_GE(ring_distance(net.id_of(s), key), best);
    }
  }
}

TEST_F(PastryTest, OwnIdOwnedBySelf) {
  const auto net = make(50, 4);
  for (SlotId s = 0; s < 50; ++s) {
    EXPECT_EQ(net.owner_of(net.id_of(s)), s);
  }
}

TEST_F(PastryTest, LeafSetsAreRingNeighbors) {
  const auto net = make(40, 5);
  for (SlotId s = 0; s < 40; ++s) {
    const auto leaves = net.leaf_set(s);
    EXPECT_EQ(leaves.size(), 2 * net.config().leaf_set_half);
    // Leaves must be closer in ring order than any non-leaf: check that
    // no non-leaf id lies strictly between s and a leaf going the short
    // way is overkill; instead check the defining property directly —
    // the union of leaf ids equals the 2*half ring-nearest positions.
    std::set<SlotId> leaf_set(leaves.begin(), leaves.end());
    EXPECT_EQ(leaf_set.size(), leaves.size());
    EXPECT_EQ(leaf_set.count(s), 0u);
  }
}

TEST_F(PastryTest, TableEntriesHaveCorrectPrefixAndDigit) {
  const auto net = make(128, 6);
  for (SlotId s = 0; s < 128; ++s) {
    for (std::size_t row = 0; row < kPastryDigits; ++row) {
      for (std::size_t col = 0; col < kPastryBase; ++col) {
        const SlotId t = net.table_entry(s, row, col);
        if (t == kInvalidSlot) continue;
        EXPECT_EQ(shared_prefix_len(net.id_of(s), net.id_of(t)), row);
        EXPECT_EQ(pastry_digit(net.id_of(t), row), col);
      }
    }
  }
}

TEST_F(PastryTest, LookupTerminatesAtOwner) {
  const auto net = make(128, 7);
  Rng rng(8);
  for (int i = 0; i < 400; ++i) {
    const SlotId src = static_cast<SlotId>(rng.uniform(128));
    const PastryId key = rng.next();
    const auto path = net.lookup_path(src, key);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), net.owner_of(key));
  }
}

TEST_F(PastryTest, LookupHopsLogarithmic) {
  const auto net = make(512, 9);
  Rng rng(10);
  double total = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    const SlotId src = static_cast<SlotId>(rng.uniform(512));
    const auto path = net.lookup_path(src, rng.next());
    total += static_cast<double>(path.size() - 1);
    EXPECT_LE(path.size() - 1, 16u);
  }
  // log16(512) ~ 2.25; allow generous slack for leaf-set hops.
  EXPECT_LE(total / trials, 6.0);
}

TEST_F(PastryTest, BoundaryKeysRouteCorrectly) {
  // Keys at digit boundaries (0x7FF.., 0x800..) exercise the ring-greedy
  // fallback where prefix match and ring proximity disagree.
  const auto net = make(64, 11);
  Rng rng(12);
  for (const PastryId key :
       {PastryId{0x7FFFFFFFFFFFFFFF}, PastryId{0x8000000000000000},
        PastryId{0}, ~PastryId{0}, PastryId{0x0FFFFFFFFFFFFFFF}}) {
    for (int i = 0; i < 16; ++i) {
      const SlotId src = static_cast<SlotId>(rng.uniform(64));
      const auto path = net.lookup_path(src, key);
      EXPECT_EQ(path.back(), net.owner_of(key));
    }
  }
}

TEST_F(PastryTest, LogicalGraphConnected) {
  const auto net = make(100, 13);
  const LogicalGraph g = net.to_logical_graph();
  EXPECT_TRUE(g.active_subgraph_connected());
  EXPECT_GE(g.min_active_degree(), 2u);  // at least the leaf set
}

TEST_F(PastryTest, BuildWithIdsPreserved) {
  const std::vector<PastryId> ids{0x1111ULL << 32, 0x2222ULL << 32,
                                  0x9999ULL << 32, 0xFFFFULL << 32};
  const auto net = PastryNetwork::build_with_ids(ids, PastryConfig{});
  for (SlotId s = 0; s < 4; ++s) EXPECT_EQ(net.id_of(s), ids[s]);
}

TEST_F(PastryTest, TinyNetworkWorks) {
  const auto net = make(2, 14);
  const auto path = net.lookup_path(0, net.id_of(1));
  EXPECT_EQ(path.back(), 1u);
}

TEST(PastryProximity, ReducesTableLatencyKeepsCorrectness) {
  Rng rng(15);
  const Graph phys = make_connected_random_graph(120, 300, 3.0, rng);
  LatencyOracle oracle(phys);
  auto plain = PastryNetwork::build_random(100, PastryConfig{}, rng);
  auto prox = PastryNetwork::build_with_ids(
      [&] {
        std::vector<PastryId> ids;
        for (SlotId s = 0; s < 100; ++s) ids.push_back(plain.id_of(s));
        return ids;
      }(),
      PastryConfig{});
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 100; ++h) hosts.push_back(h);
  prox.apply_proximity(hosts, oracle);

  auto avg_table_latency = [&](const PastryNetwork& net) {
    double sum = 0.0;
    std::size_t count = 0;
    for (SlotId s = 0; s < 100; ++s) {
      for (std::size_t row = 0; row < kPastryDigits; ++row) {
        for (std::size_t col = 0; col < kPastryBase; ++col) {
          const SlotId t = net.table_entry(s, row, col);
          if (t == kInvalidSlot) continue;
          sum += oracle.latency(hosts[s], hosts[t]);
          ++count;
        }
      }
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_LT(avg_table_latency(prox), avg_table_latency(plain));

  // Lookups still terminate at the right owner with proximity tables.
  Rng qrng(16);
  for (int i = 0; i < 200; ++i) {
    const SlotId src = static_cast<SlotId>(qrng.uniform(100));
    const PastryId key = qrng.next();
    EXPECT_EQ(prox.lookup_path(src, key).back(), prox.owner_of(key));
  }
}

TEST(PastryOverlay, BindsHosts) {
  Rng rng(17);
  const Graph phys = make_connected_random_graph(60, 140, 2.0, rng);
  LatencyOracle oracle(phys);
  const auto pastry = PastryNetwork::build_random(40, PastryConfig{}, rng);
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 40; ++h) hosts.push_back(h);
  const OverlayNetwork net = make_pastry_overlay(pastry, hosts, oracle);
  EXPECT_EQ(net.size(), 40u);
  EXPECT_TRUE(net.placement().validate());
  EXPECT_TRUE(net.graph().active_subgraph_connected());
}

}  // namespace
}  // namespace propsim
