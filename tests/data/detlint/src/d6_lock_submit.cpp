// Fixture: D6 must flag submit() under a guard; the scoped variant that
// releases before submitting must not fire.
#include <mutex>

struct Pool {
  template <typename F>
  void submit(F&&) {}
};

void bad(Pool& pool, std::mutex& m, int& shared) {
  std::lock_guard<std::mutex> lock(m);
  shared += 1;
  pool.submit([] {});
}

void good(Pool& pool, std::mutex& m, int& shared) {
  {
    std::lock_guard<std::mutex> lock(m);
    shared += 1;
  }
  pool.submit([] {});
}
