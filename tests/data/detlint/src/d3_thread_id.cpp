// Fixture: D3 must flag thread-id reads feeding logic.
#include <functional>
#include <thread>

std::size_t shard() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 8;
}
