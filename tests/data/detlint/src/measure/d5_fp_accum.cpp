// Fixture: D5 must flag FP accumulation over an unordered container in
// src/measure/; the vector loop below must not fire.
#include <unordered_map>
#include <vector>

double mean_latency() {
  std::unordered_map<int, double> latency;
  latency[1] = 0.5;
  double sum = 0.0;
  for (const auto& [id, value] : latency) {
    sum += value;
  }
  std::vector<double> ordered{0.5};
  double ok = 0.0;
  for (double v : ordered) {
    ok += v;
  }
  return sum + ok;
}
