// Fixture: D8 must flag the determinism debt marker below but not the
// unrelated one.
int answer() {
  // TODO: results depend on iteration order here, make deterministic
  int x = 41;
  // TODO: rename this variable
  return x + 1;
}
