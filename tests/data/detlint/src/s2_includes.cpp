// Fixture: S2 must flag the parent-relative include, the libstdc++
// internal header, and the duplicate. Includes sit in separate blocks
// so the formatter leaves the crafted order alone.
#include "../outside/helper.h"

#include <bits/stdc++.h>

#include <vector>

#include <vector>

int use() { return 3; }
