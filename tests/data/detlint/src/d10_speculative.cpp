// Fixture: D10 must flag default and by-reference captures in the
// Locality::kShardLocal schedule calls below, and nothing else.
void drive(Sim& sim, unsigned domain) {
  int local = 0;
  sim.schedule_at(1.0, domain, Locality::kShardLocal, [&] { local += 1; });
  sim.schedule_at(2.0, domain, Locality::kShardLocal, [=] { (void)local; });
  sim.schedule_in(3.0, domain, Locality::kShardLocal, [this, &local] {});
  sim.schedule_at(4.0, domain, Locality::kShardLocal, [this, domain] {});
  sim.schedule_at(5.0, domain, Locality::kGlobal, [local] { (void)local; });
  sim.schedule_in(6.0, [=] { (void)local; });
}
