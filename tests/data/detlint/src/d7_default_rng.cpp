// Fixture: D7 must flag default-constructed Rng locals and temporaries;
// the explicitly seeded one is fine.
struct Rng {
  Rng() = default;
  explicit Rng(unsigned long long seed) : state(seed) {}
  unsigned long long state = 0x9e3779b97f4a7c15ull;
};

unsigned long long draw(unsigned long long seed) {
  Rng unseeded;
  Rng seeded(seed + 131);
  return unseeded.state ^ seeded.state ^ Rng().state;
}
