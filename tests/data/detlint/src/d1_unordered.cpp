// Fixture: D1 must flag unordered containers in src/.
#include <cstdint>
#include <unordered_map>

int count_edges() {
  std::unordered_map<std::uint64_t, int> edges;
  edges[42] = 1;
  return static_cast<int>(edges.size());
}
