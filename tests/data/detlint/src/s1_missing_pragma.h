// Fixture: S1 must flag this header — no #pragma once.
inline int seven() { return 7; }
