// Fixture: D4 must flag the pointer-keyed map; the id-keyed one is fine.
#include <map>
#include <string>

struct Node {
  int id = 0;
};

int lookup(Node* n) {
  std::map<const Node*, int> by_addr;
  std::map<int, std::string> by_id;
  by_addr[n] = n->id;
  by_id[n->id] = "ok";
  return by_addr[n];
}
