// Fixture: S3 must flag each malformed marker below.
#include <unordered_set>

int probe() {
  // det-ok(D99): unknown rule id
  std::unordered_set<int> a;
  std::unordered_set<int> b;  // det-ok(D1):
  // det-ok(D1) missing the colon entirely
  std::unordered_set<int> c;
  a.insert(1);
  b.insert(2);
  c.insert(3);
  return static_cast<int>(a.count(1) + b.count(2) + c.count(3));
}
