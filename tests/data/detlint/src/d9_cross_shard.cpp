// Fixture: D9 must flag the default [&] captures in the shard-pinned
// (three-argument) schedule calls below, and nothing else.
void drive(Sim& sim, unsigned slot) {
  int local = 0;
  sim.schedule_in(1.0, sim.shard_of(slot), [&] { local += 1; });
  sim.schedule_at(2.0, sim.shard_of(slot),
                  [&, slot] { local = static_cast<int>(slot); });
  sim.schedule_in(1.0, sim.shard_of(slot), [&local] { local += 1; });
  sim.schedule_in(1.0, sim.shard_of(slot), [slot] { (void)slot; });
  sim.schedule_in(1.0, [&] { local += 1; });  // two-arg: shard-local
}
