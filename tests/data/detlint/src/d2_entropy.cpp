// Fixture: D2 must flag every ambient-entropy source here.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned draw() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  auto t = std::chrono::system_clock::now();
  (void)t;
  return static_cast<unsigned>(rand()) + rd();
}
