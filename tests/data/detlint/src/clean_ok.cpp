// Fixture: must produce zero unsuppressed findings — the unordered set
// is shielded by a well-formed marker.
#include <unordered_set>

bool seen_before(int key) {
  static thread_local int calls = 0;
  // det-ok(D1): membership probe only, never iterated
  static std::unordered_set<int> seen;
  ++calls;
  return !seen.insert(key).second;
}
