// Boundary and corner-case suite: minimal populations, degenerate
// configurations and extreme parameters across all modules.
#include <limits>

#include <gtest/gtest.h>

#include "baselines/ltm.h"
#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "core/prop_engine.h"
#include "fixtures.h"
#include "gnutella/flood_search.h"
#include "pastry/pastry.h"
#include "sim/simulator.h"
#include "topology/transit_stub.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

// ------------------------------------------------------------ topology ----

TEST(EdgeTopology, SingleTransitDomain) {
  TransitStubConfig c;
  c.transit_domains = 1;
  c.transit_nodes_per_domain = 1;
  c.stub_domains_per_transit = 1;
  c.nodes_per_stub = 5;
  Rng rng(1);
  const auto topo = make_transit_stub(c, rng);
  EXPECT_EQ(topo.graph.node_count(), 6u);
  EXPECT_TRUE(topo.graph.is_connected());
  EXPECT_EQ(topo.transit_nodes.size(), 1u);
}

TEST(EdgeTopology, MinimalStubDomains) {
  TransitStubConfig c;
  c.transit_domains = 2;
  c.transit_nodes_per_domain = 1;
  c.stub_domains_per_transit = 1;
  c.nodes_per_stub = 1;  // single-node stub domains
  Rng rng(2);
  const auto topo = make_transit_stub(c, rng);
  EXPECT_TRUE(topo.graph.is_connected());
  for (const NodeId s : topo.stub_nodes) {
    EXPECT_GE(topo.graph.degree(s), 1u);  // the stub-transit uplink
  }
}

TEST(EdgeTopology, ZeroProbabilityExtrasStillConnected) {
  TransitStubConfig c;
  c.transit_domains = 3;
  c.transit_nodes_per_domain = 3;
  c.stub_domains_per_transit = 1;
  c.nodes_per_stub = 6;
  c.transit_edge_probability = 0.0;
  c.stub_edge_probability = 0.0;
  c.extra_interdomain_edges = 0;
  Rng rng(3);
  const auto topo = make_transit_stub(c, rng);
  EXPECT_TRUE(topo.graph.is_connected());  // spanning trees guarantee it
}

// --------------------------------------------------------------- chord ----

TEST(EdgeChord, SuccessorListLargerThanRing) {
  Rng rng(4);
  ChordConfig cfg;
  cfg.successor_list = 100;  // clamps to n-1
  const auto ring = ChordRing::build_random(5, cfg, rng);
  for (SlotId s = 0; s < 5; ++s) {
    EXPECT_EQ(ring.successors(s).size(), 4u);
  }
  EXPECT_EQ(ring.lookup_path(0, ring.id_of(3)).back(), 3u);
}

TEST(EdgeChord, KeyAtExactNodeId) {
  Rng rng(5);
  const auto ring = ChordRing::build_random(16, ChordConfig{}, rng);
  for (SlotId s = 0; s < 16; ++s) {
    // Looking up a node's exact id from anywhere lands on that node.
    EXPECT_EQ(ring.lookup_path((s + 7) % 16, ring.id_of(s)).back(), s);
  }
}

TEST(EdgeChord, ExtremeKeyValues) {
  Rng rng(6);
  const auto ring = ChordRing::build_random(16, ChordConfig{}, rng);
  for (const ChordId key : {ChordId{0}, ~ChordId{0}, ChordId{1}}) {
    const auto path = ring.lookup_path(3, key);
    EXPECT_EQ(path.back(), ring.successor_of(key));
  }
}

// -------------------------------------------------------------- pastry ----

TEST(EdgePastry, LeafHalfBiggerThanRing) {
  Rng rng(7);
  PastryConfig cfg;
  cfg.leaf_set_half = 50;
  const auto net = PastryNetwork::build_random(6, cfg, rng);
  // Clamped to (n-1)/2 per side.
  for (SlotId s = 0; s < 6; ++s) {
    EXPECT_LE(net.leaf_set(s).size(), 5u);
  }
  EXPECT_EQ(net.lookup_path(0, net.id_of(4)).back(), 4u);
}

TEST(EdgePastry, AdjacentIdsRoute) {
  // Ids differing only in the last digit stress the deep table rows.
  std::vector<PastryId> ids;
  for (PastryId i = 0; i < 8; ++i) ids.push_back(0xABCD000000000000ULL + i);
  const auto net = PastryNetwork::build_with_ids(ids, PastryConfig{});
  for (SlotId s = 0; s < 8; ++s) {
    for (SlotId t = 0; t < 8; ++t) {
      EXPECT_EQ(net.lookup_path(s, net.id_of(t)).back(), t);
    }
  }
}

// ----------------------------------------------------------------- can ----

TEST(EdgeCan, TwoZones) {
  Rng rng(8);
  const auto space = CanSpace::build(2, rng);
  EXPECT_TRUE(space.validate());
  EXPECT_EQ(space.neighbors(0).size(), 1u);
  const auto path = space.route_path(0, space.zone(1).center());
  EXPECT_EQ(path.back(), 1u);
}

TEST(EdgeCan, CornerPoints) {
  Rng rng(9);
  const auto space = CanSpace::build(20, rng);
  for (const CanPoint p :
       {CanPoint{0, 0}, CanPoint{kCanSpan - 1, kCanSpan - 1},
        CanPoint{0, kCanSpan - 1}}) {
    const SlotId owner = space.owner_of(p);
    EXPECT_TRUE(space.zone(owner).contains(p));
    EXPECT_EQ(space.route_path(5 % space.size(), p).back(), owner);
  }
}

// ------------------------------------------------------------- engines ----

TEST(EdgeEngine, HugeMinVarMeansNoExchanges) {
  auto fx = UnstructuredFixture::make(30, 9601);
  Simulator sim;
  PropParams params;
  params.init_timer_s = 10.0;
  params.min_var = std::numeric_limits<double>::max();
  PropEngine engine(fx.net, sim, params, 1);
  engine.start();
  sim.run_until(500.0);
  EXPECT_EQ(engine.stats().exchanges, 0u);
  EXPECT_GT(engine.stats().rejected, 0u);
}

TEST(EdgeEngine, TinyOverlayStillRuns) {
  auto fx = UnstructuredFixture::make(5, 9602, /*attach_links=*/3);
  Simulator sim;
  PropParams params;
  params.init_timer_s = 5.0;
  PropEngine engine(fx.net, sim, params, 2);
  engine.start();
  sim.run_until(500.0);
  EXPECT_GT(engine.stats().attempts, 0u);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
}

TEST(EdgeEngine, NhopsLargerThanDiameter) {
  auto fx = UnstructuredFixture::make(12, 9603, /*attach_links=*/3);
  Simulator sim;
  PropParams params;
  params.init_timer_s = 5.0;
  params.nhops = 50;  // walks will mostly dead-end
  PropEngine engine(fx.net, sim, params, 3);
  engine.start();
  sim.run_until(500.0);
  EXPECT_GT(engine.stats().walk_failures, 0u);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
}

TEST(EdgeEngine, StopCancelsEverything) {
  auto fx = UnstructuredFixture::make(20, 9604);
  Simulator sim;
  PropParams params;
  params.init_timer_s = 10.0;
  PropEngine engine(fx.net, sim, params, 4);
  engine.start();
  sim.run_until(50.0);
  engine.stop();
  const auto attempts = engine.stats().attempts;
  sim.run_until(1000.0);
  EXPECT_EQ(engine.stats().attempts, attempts);
}

TEST(EdgeLtm, CompleteGraphOnlyCuts) {
  // A logical clique over a line-shaped physical network: LTM should
  // prune long chords without ever disconnecting.
  Graph phys(6);
  for (NodeId u = 0; u + 1 < 6; ++u) phys.add_edge(u, u + 1, 10.0);
  LatencyOracle oracle(phys);
  LogicalGraph g(6);
  for (SlotId a = 0; a < 6; ++a) {
    for (SlotId b = a + 1; b < 6; ++b) g.add_edge(a, b);
  }
  Placement p(6, 6);
  for (SlotId s = 0; s < 6; ++s) p.bind(s, s);
  OverlayNetwork net(std::move(g), std::move(p), oracle);
  LtmParams params;
  for (int round = 0; round < 4; ++round) {
    for (SlotId s = 0; s < 6; ++s) ltm_round(net, s, params);
  }
  EXPECT_TRUE(net.graph().active_subgraph_connected());
  EXPECT_LT(net.graph().edge_count(), 15u);  // clique got pruned
  EXPECT_GE(net.graph().min_active_degree(), params.min_degree);
}

// ---------------------------------------------------------------- misc ----

TEST(EdgeFlood, SingleNodeOverlayFloodsNothing) {
  Graph phys(2);
  phys.add_edge(0, 1, 1.0);
  LatencyOracle oracle(phys);
  LogicalGraph g(1);
  Placement p(1, 2);
  p.bind(0, 0);
  OverlayNetwork net(std::move(g), std::move(p), oracle);
  std::vector<bool> holders{true};
  const auto res = flood_search(net, 0, holders, 5);
  EXPECT_TRUE(res.found);
  EXPECT_EQ(res.messages, 0u);
}

TEST(EdgeExchange, SelfExchangeForbidden) {
  auto fx = UnstructuredFixture::make(10, 9605, /*attach_links=*/3);
  // plan_prop_g(u, u) violates its precondition; verify the engine can
  // never produce it by running a long random session.
  Simulator sim;
  PropParams params;
  params.init_timer_s = 2.0;
  PropEngine engine(fx.net, sim, params, 5);
  engine.start();
  sim.run_until(2000.0);  // PROPSIM_CHECK inside would abort on u == v
  EXPECT_GT(engine.stats().attempts, 100u);
}

}  // namespace
}  // namespace propsim
