#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/prop_engine.h"
#include "fixtures.h"
#include "sim/simulator.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

TEST(ExchangeObserver, SeesEveryCommittedExchange) {
  auto fx = UnstructuredFixture::make(40, 9501);
  Simulator sim;
  PropParams params;
  params.init_timer_s = 10.0;
  PropEngine engine(fx.net, sim, params, 1);
  std::vector<PropEngine::ExchangeEvent> events;
  engine.set_observer(
      [&](const PropEngine::ExchangeEvent& e) { events.push_back(e); });
  engine.start();
  sim.run_until(1000.0);
  ASSERT_EQ(events.size(), engine.stats().exchanges);
  ASSERT_GT(events.size(), 0u);
  double last_time = 0.0;
  double var_sum = 0.0;
  for (const auto& e : events) {
    EXPECT_GE(e.time, last_time);
    last_time = e.time;
    EXPECT_GT(e.var, 0.0);  // only positive-Var exchanges commit
    EXPECT_NE(e.u, e.v);
    EXPECT_EQ(e.mode, PropMode::kPropG);
    EXPECT_EQ(e.transferred, 0u);
    var_sum += e.var;
  }
  EXPECT_NEAR(var_sum, engine.stats().total_var_gain, 1e-6);
}

TEST(ExchangeObserver, PropOReportsTransferSizes) {
  auto fx = UnstructuredFixture::make(40, 9502);
  Simulator sim;
  PropParams params;
  params.mode = PropMode::kPropO;
  params.m = 2;
  params.init_timer_s = 10.0;
  PropEngine engine(fx.net, sim, params, 2);
  std::size_t observed = 0;
  engine.set_observer([&](const PropEngine::ExchangeEvent& e) {
    ++observed;
    EXPECT_EQ(e.mode, PropMode::kPropO);
    EXPECT_GE(e.transferred, 1u);
    EXPECT_LE(e.transferred, 2u);
  });
  engine.start();
  sim.run_until(1000.0);
  EXPECT_EQ(observed, engine.stats().exchanges);
  EXPECT_GT(observed, 0u);
}

TEST(ExchangeObserver, FiresUnderDelayedCommitsToo) {
  auto fx = UnstructuredFixture::make(40, 9503);
  Simulator sim;
  PropParams params;
  params.init_timer_s = 10.0;
  params.model_message_delays = true;
  PropEngine engine(fx.net, sim, params, 3);
  std::size_t observed = 0;
  engine.set_observer(
      [&](const PropEngine::ExchangeEvent&) { ++observed; });
  engine.start();
  sim.run_until(1500.0);
  EXPECT_EQ(observed, engine.stats().exchanges);
  EXPECT_GT(observed, 0u);
}

TEST(OracleWarm, ParallelWarmMatchesLazyAnswers) {
  auto fx = UnstructuredFixture::make(40, 9504);
  const auto hosts = fx.net.placement().bound_hosts();
  // Fresh oracle over the same graph, warmed in parallel.
  LatencyOracle warmed(fx.topo.graph);
  ThreadPool pool(4);
  warmed.warm(hosts, pool);
  EXPECT_EQ(warmed.cached_sources(), hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); j += 7) {
      EXPECT_DOUBLE_EQ(warmed.latency(hosts[i], hosts[j]),
                       fx.oracle.latency(hosts[i], hosts[j]));
    }
  }
}

TEST(OracleWarm, IdempotentAndDeduplicating) {
  auto fx = UnstructuredFixture::make(20, 9505);
  LatencyOracle oracle(fx.topo.graph);
  ThreadPool pool(2);
  std::vector<NodeId> sources{1, 1, 2, 2, 3};
  oracle.warm(sources, pool);
  EXPECT_EQ(oracle.cached_sources(), 3u);
  oracle.warm(sources, pool);  // second call is a no-op
  EXPECT_EQ(oracle.cached_sources(), 3u);
}

}  // namespace
}  // namespace propsim
