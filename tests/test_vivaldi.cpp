#include <gtest/gtest.h>

#include "common/rng.h"
#include "fixtures.h"
#include "topology/vivaldi.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

TEST(Vivaldi, EstimateIsSymmetricAndZeroOnSelf) {
  VivaldiSystem viv(10, VivaldiConfig{}, 1);
  EXPECT_DOUBLE_EQ(viv.estimate(3, 3), 0.0);
  EXPECT_NEAR(viv.estimate(2, 7), viv.estimate(7, 2), 1e-12);
  EXPECT_GT(viv.estimate(2, 7), 0.0);  // heights keep it positive
}

TEST(Vivaldi, SingleSpringConverges) {
  // Two nodes, true latency 50 ms: alternating updates must drive the
  // estimate toward 50.
  VivaldiSystem viv(2, VivaldiConfig{}, 2);
  for (int i = 0; i < 500; ++i) {
    viv.update(0, 1, 50.0);
    viv.update(1, 0, 50.0);
  }
  EXPECT_NEAR(viv.estimate(0, 1), 50.0, 5.0);
  EXPECT_LT(viv.error_of(0), 0.2);
}

TEST(Vivaldi, TriangleEmbedsExactly) {
  // Latencies 30/40/50 satisfy the triangle inequality and embed in the
  // plane, so a 3-d space must fit them well.
  VivaldiSystem viv(3, VivaldiConfig{}, 3);
  Rng rng(4);
  for (int round = 0; round < 3000; ++round) {
    const int pick = static_cast<int>(rng.uniform(6));
    const NodeId pairs[6][2] = {{0, 1}, {1, 0}, {0, 2},
                                {2, 0}, {1, 2}, {2, 1}};
    const double rtts[6] = {30, 30, 40, 40, 50, 50};
    viv.update(pairs[pick][0], pairs[pick][1], rtts[pick]);
  }
  EXPECT_NEAR(viv.estimate(0, 1), 30.0, 6.0);
  EXPECT_NEAR(viv.estimate(0, 2), 40.0, 8.0);
  EXPECT_NEAR(viv.estimate(1, 2), 50.0, 10.0);
}

TEST(Vivaldi, TrainingReducesMedianErrorOnTransitStub) {
  auto fx = UnstructuredFixture::make(60, 9701);
  const auto hosts = fx.net.placement().bound_hosts();
  VivaldiSystem viv(fx.topo.graph.node_count(), VivaldiConfig{}, 5);
  Rng rng(6);
  const double before =
      viv.median_relative_error(hosts, fx.oracle, 500, rng);
  Rng trng(7);
  viv.train(hosts, fx.oracle, 30000, trng);
  Rng rng2(6);
  const double after =
      viv.median_relative_error(hosts, fx.oracle, 500, rng2);
  EXPECT_LT(after, before * 0.5);
  // Trained Vivaldi on transit-stub topologies typically reaches
  // 10-30% median relative error; assert a loose ceiling.
  EXPECT_LT(after, 0.45);
}

TEST(Vivaldi, ErrorsShrinkWithTraining) {
  auto fx = UnstructuredFixture::make(30, 9702);
  const auto hosts = fx.net.placement().bound_hosts();
  VivaldiSystem viv(fx.topo.graph.node_count(), VivaldiConfig{}, 8);
  Rng trng(9);
  viv.train(hosts, fx.oracle, 20000, trng);
  double avg_error = 0.0;
  for (const NodeId h : hosts) avg_error += viv.error_of(h);
  avg_error /= static_cast<double>(hosts.size());
  EXPECT_LT(avg_error, 0.5);  // started at 1.0
}

TEST(Vivaldi, DeterministicForSeed) {
  auto run = [] {
    VivaldiSystem viv(4, VivaldiConfig{}, 42);
    for (int i = 0; i < 100; ++i) {
      viv.update(0, 1, 20.0);
      viv.update(1, 2, 30.0);
      viv.update(2, 3, 10.0);
    }
    return viv.estimate(0, 3);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace propsim
