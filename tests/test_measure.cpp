// Measurement engine: snapshot fidelity, parallel determinism (results
// bit-identical to the serial path for any thread count), scratch
// reuse, the delta-stepping fast kernel's bounded-error equivalence,
// snapshot caching, the measure_threads / measure_mode config keys,
// and golden whole-experiment JSON across thread counts.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/experiment.h"
#include "app/result_json.h"
#include "chord/chord_ring.h"
#include "common/config.h"
#include "fixtures.h"
#include "measure/measure_engine.h"
#include "measure/snapshot_cache.h"
#include "metrics/metrics.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

// ----------------------------------------------------- OverlaySnapshot ----

TEST(OverlaySnapshot, MirrorsLiveAdjacencyAndLatencies) {
  auto fx = UnstructuredFixture::make(40, 7001);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  const LogicalGraph& g = fx.net.graph();
  ASSERT_EQ(snap.slot_count(), g.slot_count());
  EXPECT_EQ(snap.edge_count(), 2 * g.edge_count());
  for (SlotId s = 0; s < g.slot_count(); ++s) {
    EXPECT_EQ(snap.is_active(s), g.is_active(s));
    const auto targets = snap.targets(s);
    const auto lats = snap.latencies(s);
    const auto nbrs = g.neighbors(s);
    ASSERT_EQ(targets.size(), nbrs.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      EXPECT_EQ(targets[i], nbrs[i]);
      // Precomputed edge latency is the identical double slot_latency
      // returns — the determinism contract depends on exact equality.
      EXPECT_EQ(lats[i], fx.net.slot_latency(s, nbrs[i]));
    }
  }
}

TEST(OverlaySnapshot, LinkFilterPrunesAtCapture) {
  auto fx = UnstructuredFixture::make(40, 7002);
  const OverlayNetwork::LinkFilter drop = [](SlotId a, SlotId b) {
    return (a + b) % 3 != 0;
  };
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net, &drop);
  for (SlotId s = 0; s < snap.slot_count(); ++s) {
    for (const SlotId t : snap.targets(s)) EXPECT_TRUE(drop(s, t));
  }
  // Pruned-at-capture == skipped-at-relax: floods over the snapshot must
  // equal live floods under the same filter, unreachable slots included.
  MeasureScratch scratch;
  for (const SlotId src : {SlotId{0}, SlotId{5}, SlotId{17}}) {
    flood_snapshot(snap, src, nullptr, scratch);
    const auto live = fx.net.flood_latencies(src, nullptr, &drop);
    for (SlotId v = 0; v < live.size(); ++v) {
      EXPECT_EQ(scratch.distance(v), live[v]) << "src " << src << " v " << v;
    }
  }
}

TEST(FloodSnapshot, MatchesLiveFloodWithProcessingDelays) {
  auto fx = UnstructuredFixture::make(50, 7003);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  std::vector<double> proc(fx.net.graph().slot_count(), 0.0);
  for (std::size_t s = 0; s < proc.size(); s += 3) proc[s] = 7.5;
  MeasureScratch scratch;  // reused across every source
  for (SlotId src = 0; src < 50; ++src) {
    flood_snapshot(snap, src, &proc, scratch);
    const auto live = fx.net.flood_latencies(src, &proc);
    for (SlotId v = 0; v < live.size(); ++v) {
      EXPECT_EQ(scratch.distance(v), live[v]) << "src " << src << " v " << v;
    }
  }
}

// ----------------------------------------------- fixed-point encoding ----

TEST(FixedPoint, GridAndOffGridQuantization) {
  // Transit-stub edge latencies are small integers of milliseconds;
  // integers sit exactly on the 2^-20 fixed-point grid.
  EXPECT_EQ(OverlaySnapshot::quantize_ms(5.0),
            5ull << OverlaySnapshot::kFxFracBits);
  EXPECT_EQ(OverlaySnapshot::quantize_ms(0.0), 0ull);
  // Off-grid values round to the nearest grid point: half-ULP error.
  const double ms = 7.3;
  const std::uint64_t fx = OverlaySnapshot::quantize_ms(ms);
  ASSERT_LE(fx, OverlaySnapshot::kFxMaxEdge);
  EXPECT_LE(std::fabs(static_cast<double>(fx) / OverlaySnapshot::kFxPerMs -
                      ms),
            0.5 / OverlaySnapshot::kFxPerMs);
  // Unencodable values come back as sentinels above kFxMaxEdge so
  // capture can mark the snapshot !fixed_point_ok() instead of
  // silently wrapping.
  EXPECT_GT(OverlaySnapshot::quantize_ms(-1.0), OverlaySnapshot::kFxMaxEdge);
  EXPECT_GT(OverlaySnapshot::quantize_ms(1e12), OverlaySnapshot::kFxMaxEdge);
  EXPECT_GT(
      OverlaySnapshot::quantize_ms(std::numeric_limits<double>::infinity()),
      OverlaySnapshot::kFxMaxEdge);
}

TEST(FixedPoint, SnapshotCarriesQuantizedEdges) {
  auto fx = UnstructuredFixture::make(40, 7020);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  ASSERT_TRUE(snap.fixed_point_ok());
  for (SlotId s = 0; s < snap.slot_count(); ++s) {
    const auto ms = snap.latencies(s);
    const auto fxs = snap.latencies_fx(s);
    ASSERT_EQ(ms.size(), fxs.size());
    for (std::size_t i = 0; i < ms.size(); ++i) {
      EXPECT_EQ(fxs[i], OverlaySnapshot::quantize_ms(ms[i]));
      EXPECT_GE(fxs[i], snap.min_edge_fx());
    }
  }
}

// ----------------------------------------------- delta-stepping flood ----

TEST(FloodSnapshotFast, MatchesExactWithinQuantizationBound) {
  auto fx = UnstructuredFixture::make(50, 7021);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  ASSERT_TRUE(snap.fixed_point_ok());
  // Off-grid processing delays force nonzero quantization error (the
  // topology's own edge latencies are integral, hence exact).
  const std::size_t n = snap.slot_count();
  std::vector<double> proc(n, 0.0);
  std::vector<std::uint32_t> proc_fx(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    proc[s] = 0.1 * static_cast<double>(s % 7);
    proc_fx[s] =
        static_cast<std::uint32_t>(OverlaySnapshot::quantize_ms(proc[s]));
  }
  MeasureScratch exact;
  FastMeasureScratch fast;
  for (SlotId src = 0; src < n; ++src) {
    flood_snapshot(snap, src, &proc, exact);
    flood_snapshot_fast(snap, src, &proc_fx, fast);
    for (SlotId v = 0; v < n; ++v) {
      const double e = exact.distance(v);
      const double f = fast.distance(v);
      if (std::isinf(e)) {
        EXPECT_TRUE(std::isinf(f)) << "src " << src << " v " << v;
        continue;
      }
      EXPECT_NEAR(f, e, 1e-6 * std::max(e, 1.0))
          << "src " << src << " v " << v;
    }
  }
}

TEST(FloodSnapshotFast, ExactOnIntegralLatenciesWithoutDelays) {
  // With every edge weight on the fixed-point grid the bucket queue is
  // not an approximation at all: distances must match bit-for-bit.
  auto fx = UnstructuredFixture::make(40, 7022);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  MeasureScratch exact;
  FastMeasureScratch fast;
  for (const SlotId src : {SlotId{0}, SlotId{13}, SlotId{29}}) {
    flood_snapshot(snap, src, nullptr, exact);
    flood_snapshot_fast(snap, src, nullptr, fast);
    for (SlotId v = 0; v < snap.slot_count(); ++v) {
      EXPECT_EQ(fast.distance(v), exact.distance(v))
          << "src " << src << " v " << v;
    }
  }
}

// ------------------------------------------------------- MeasureEngine ----

TEST(MeasureEngine, LookupLatenciesBitIdenticalAcrossThreadCounts) {
  auto fx = UnstructuredFixture::make(60, 7004);
  Rng rng(9);
  const auto queries = sample_query_pairs(fx.net.graph(), 400, rng);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  MeasureEngine serial(1);
  const auto want = serial.lookup_latencies(snap, queries);
  const double want_avg = serial.average_lookup_latency(snap, queries);
  for (const std::size_t t : {2, 4, 8}) {
    MeasureEngine engine(t);
    EXPECT_EQ(engine.thread_count(), t);
    EXPECT_EQ(engine.lookup_latencies(snap, queries), want);
    EXPECT_EQ(engine.average_lookup_latency(snap, queries), want_avg);
  }
}

TEST(MeasureEngine, MatchesHistoricalSerialHelpers) {
  auto fx = UnstructuredFixture::make(50, 7005);
  Rng rng(10);
  const auto queries = sample_query_pairs(fx.net.graph(), 250, rng);
  MeasureEngine engine(4);
  EXPECT_EQ(engine.lookup_latencies(OverlaySnapshot::capture(fx.net), queries),
            unstructured_lookup_latencies(fx.net, queries));
  EXPECT_EQ(engine.average_direct_latency(fx.net, queries),
            average_direct_latency(fx.net, queries));
}

TEST(MeasureEngine, StretchBitIdenticalOnChordRouter) {
  Rng rng(11);
  auto fx = UnstructuredFixture::make(40, 7006);
  const auto ring = ChordRing::build_random(40, ChordConfig{}, rng);
  const auto router = chord_router(fx.net, ring);
  const auto queries = sample_query_pairs(fx.net.graph(), 300, rng);
  MeasureEngine serial(1);
  MeasureEngine parallel(4);
  EXPECT_EQ(serial.route_latencies(queries, router),
            parallel.route_latencies(queries, router));
  EXPECT_EQ(serial.direct_latencies(fx.net, queries),
            parallel.direct_latencies(fx.net, queries));
  const StretchResult a = serial.stretch(fx.net, queries, router);
  const StretchResult b = parallel.stretch(fx.net, queries, router);
  EXPECT_EQ(a.logical_al, b.logical_al);
  EXPECT_EQ(a.physical_al, b.physical_al);
  EXPECT_EQ(a.stretch, b.stretch);
}

TEST(MeasureEngine, ScratchReusedAcrossChangingSnapshots) {
  auto fx = UnstructuredFixture::make(40, 7007);
  Rng rng(12);
  const auto queries = sample_query_pairs(fx.net.graph(), 200, rng);
  MeasureEngine reused(4);
  const OverlaySnapshot before = OverlaySnapshot::capture(fx.net);
  const auto r_before = reused.lookup_latencies(before, queries);

  // Rewire the overlay; the old snapshot must stay valid and the reused
  // engine must agree with a fresh one on both snapshots.
  LogicalGraph& g = fx.net.graph();
  const SlotId drop = g.neighbors(0).front();
  g.remove_edge(0, drop);
  SlotId add = 1;
  while (add == drop || g.has_edge(0, add)) ++add;
  g.add_edge(0, add);
  const OverlaySnapshot after = OverlaySnapshot::capture(fx.net);
  const auto r_after = reused.lookup_latencies(after, queries);

  MeasureEngine fresh(4);
  EXPECT_EQ(fresh.lookup_latencies(after, queries), r_after);
  EXPECT_EQ(fresh.lookup_latencies(before, queries), r_before);
}

TEST(MeasureEngine, FastModeBitIdenticalAcrossThreadCounts) {
  auto fx = UnstructuredFixture::make(60, 7023);
  Rng rng(14);
  const auto queries = sample_query_pairs(fx.net.graph(), 400, rng);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  MeasureEngine serial(1, MeasureMode::kFast);
  EXPECT_EQ(serial.mode(), MeasureMode::kFast);
  const auto want = serial.lookup_latencies(snap, queries);
  const double want_avg = serial.average_lookup_latency(snap, queries);
  for (const std::size_t t : {2, 4, 8}) {
    MeasureEngine engine(t, MeasureMode::kFast);
    EXPECT_EQ(engine.lookup_latencies(snap, queries), want);
    EXPECT_EQ(engine.average_lookup_latency(snap, queries), want_avg);
  }
  // The work counters track the kernel actually dispatched.
  EXPECT_GT(serial.stats().fast_floods, 0u);
  EXPECT_EQ(serial.stats().exact_floods, 0u);
  MeasureEngine exact(1);
  (void)exact.average_lookup_latency(snap, queries);
  EXPECT_GT(exact.stats().exact_floods, 0u);
  EXPECT_EQ(exact.stats().fast_floods, 0u);
}

TEST(MeasureEngine, FastAverageWithinBoundOfExact) {
  auto fx = UnstructuredFixture::make(60, 7024);
  Rng rng(15);
  const auto queries = sample_query_pairs(fx.net.graph(), 400, rng);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  std::vector<double> proc(snap.slot_count(), 0.0);
  for (std::size_t s = 0; s < proc.size(); ++s) {
    proc[s] = 0.25 * static_cast<double>(s % 5) + 0.3;
  }
  MeasureEngine exact(1, MeasureMode::kExact);
  MeasureEngine fast(1, MeasureMode::kFast);
  const double e = exact.average_lookup_latency(snap, queries, &proc);
  const double f = fast.average_lookup_latency(snap, queries, &proc);
  ASSERT_TRUE(std::isfinite(e));
  EXPECT_NEAR(f, e, 1e-6 * e);
}

// ------------------------------------------------------ SnapshotCache ----

TEST(SnapshotCache, ReusesUntilVersionAdvances) {
  auto fx = UnstructuredFixture::make(30, 7025);
  std::size_t calls = 0;
  SnapshotCache cache([&] {
    ++calls;
    return OverlaySnapshot::capture(fx.net);
  });
  const OverlaySnapshot& a = cache.at(1);
  const OverlaySnapshot& b = cache.at(1);
  EXPECT_EQ(&a, &b);  // reuse is by reference, not a copy
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(cache.captures(), 1u);
  EXPECT_EQ(cache.reuses(), 1u);

  (void)cache.at(2);  // version moved: recapture
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(cache.captures(), 2u);
  EXPECT_EQ(cache.reuses(), 1u);

  cache.invalidate();  // same version no longer trusted
  (void)cache.at(2);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(cache.captures(), 3u);
  EXPECT_EQ(cache.reuses(), 1u);
}

// ------------------------------------------------ measure_threads key ----

ExperimentSpec must_parse(const std::string& text) {
  const SpecResult parsed = ExperimentSpec::from_config(Config::parse(text));
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  return parsed.ok() ? parsed.spec() : ExperimentSpec{};
}

TEST(MeasureThreadsKey, DefaultsToSerial) {
  EXPECT_EQ(must_parse("").measure_threads, 1u);
}

TEST(MeasureThreadsKey, ParsesAutoAndCounts) {
  EXPECT_EQ(must_parse("measure_threads = auto\n").measure_threads,
            ExperimentSpec::kMeasureThreadsAuto);
  EXPECT_EQ(must_parse("measure_threads = 0\n").measure_threads, 0u);
  EXPECT_EQ(must_parse("measure_threads = 6\n").measure_threads, 6u);
}

TEST(MeasureThreadsKey, RejectsNegativeAndGarbage) {
  for (const char* bad : {"measure_threads = -2\n", "measure_threads = up\n"}) {
    const SpecResult parsed =
        ExperimentSpec::from_config(Config::parse(bad));
    EXPECT_FALSE(parsed.ok()) << bad;
  }
}

// ----------------------------------------------- measure_mode key ----

TEST(MeasureModeKey, DefaultsToAutoWhichResolvesToExact) {
  const ExperimentSpec spec = must_parse("");
  EXPECT_EQ(spec.measure_mode, ExperimentSpec::MeasureMode::kAuto);
  EXPECT_EQ(spec.resolved_measure_mode(),
            ExperimentSpec::MeasureMode::kExact);
}

TEST(MeasureModeKey, ParsesAutoExactAndFast) {
  EXPECT_EQ(must_parse("measure_mode = auto\n").measure_mode,
            ExperimentSpec::MeasureMode::kAuto);
  EXPECT_EQ(must_parse("measure_mode = exact\n").measure_mode,
            ExperimentSpec::MeasureMode::kExact);
  // Default overlay is gnutella, so fast is admissible without more.
  const ExperimentSpec fast = must_parse("measure_mode = fast\n");
  EXPECT_EQ(fast.measure_mode, ExperimentSpec::MeasureMode::kFast);
  EXPECT_EQ(fast.resolved_measure_mode(),
            ExperimentSpec::MeasureMode::kFast);
}

TEST(MeasureModeKey, UnknownValueListsTheValidOnes) {
  const SpecResult parsed =
      ExperimentSpec::from_config(Config::parse("measure_mode = quick\n"));
  ASSERT_FALSE(parsed.ok());
  const std::string report = parsed.error_report();
  for (const char* valid : {"auto", "exact", "fast"}) {
    EXPECT_NE(report.find(valid), std::string::npos) << report;
  }
}

TEST(MeasureModeKey, MisspelledKeyGetsDidYouMeanHint) {
  const SpecResult parsed =
      ExperimentSpec::from_config(Config::parse("measure_mod = fast\n"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_report().find("measure_mode"), std::string::npos)
      << parsed.error_report();
}

TEST(MeasureModeKey, FastRejectsStructuredOverlays) {
  const SpecResult parsed = ExperimentSpec::from_config(
      Config::parse("overlay = chord\nmeasure_mode = fast\n"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_report().find("requires overlay = gnutella"),
            std::string::npos)
      << parsed.error_report();
}

TEST(MeasureModeKey, ComposesWithEveryMeasureThreadsSetting) {
  for (const char* threads : {"0", "1", "4", "auto"}) {
    const std::string text =
        std::string("measure_mode = fast\nmeasure_threads = ") + threads +
        "\n";
    EXPECT_TRUE(ExperimentSpec::from_config(Config::parse(text)).ok())
        << text;
  }
}

// --------------------------------------------------- sim_shards key ----

TEST(SimShardsKey, DefaultsToSerial) {
  EXPECT_EQ(must_parse("").sim_shards, 1u);
  EXPECT_DOUBLE_EQ(must_parse("").shard_window_s, 0.25);
}

TEST(SimShardsKey, ParsesAutoCountsAndWindow) {
  EXPECT_EQ(must_parse("sim_shards = auto\n").sim_shards,
            ExperimentSpec::kSimShardsAuto);
  EXPECT_EQ(must_parse("sim_shards = 0\n").sim_shards, 0u);
  EXPECT_EQ(must_parse("sim_shards = 8\n").sim_shards, 8u);
  EXPECT_DOUBLE_EQ(
      must_parse("sim_shards = 4\nshard_window = 0.5\n").shard_window_s,
      0.5);
}

TEST(SimShardsKey, RejectsBadValuesAndCombinations) {
  for (const char* bad : {
           "sim_shards = -2\n",                    // negative
           "sim_shards = up\n",                    // garbage
           "sim_shards = 65\n",                    // above kMaxShards
           "sim_shards = 4\nshard_window = 0\n",   // non-positive window
           "shard_window = 0.5\n",                 // window without shards
           "sim_shards = 1\nshard_window = 0.5\n",  // window on serial core
           "sim_shards = 4\ntopology = waxman\n",  // needs stub domains
           "sim_shards = auto\nmeasure_threads = auto\n",  // both auto
       }) {
    EXPECT_FALSE(ExperimentSpec::from_config(Config::parse(bad)).ok()) << bad;
  }
}

TEST(SimShardsKey, MisspelledKeyGetsDidYouMeanHint) {
  const SpecResult parsed =
      ExperimentSpec::from_config(Config::parse("sim_shard = 4\n"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_report().find("sim_shards"), std::string::npos)
      << parsed.error_report();
}

// ---------------------------------------------- sim_speculative key ----

TEST(SimSpeculativeKey, ParsesAndDefaultsToOff) {
  EXPECT_EQ(must_parse("").sim_speculative, ExperimentSpec::Speculative::kOff);
  EXPECT_EQ(must_parse("sim_speculative = off\n").sim_speculative,
            ExperimentSpec::Speculative::kOff);
  EXPECT_EQ(must_parse("sim_speculative = on\n").sim_speculative,
            ExperimentSpec::Speculative::kOn);
  EXPECT_EQ(must_parse("sim_speculative = auto\n").sim_speculative,
            ExperimentSpec::Speculative::kAuto);
  // `on` with the serial core is legal: it resolves to plain serial
  // execution, so sweeping shard counts never needs config surgery.
  EXPECT_TRUE(ExperimentSpec::from_config(
                  Config::parse("sim_speculative = on\n"))
                  .ok());
}

TEST(SimSpeculativeKey, RejectsBadValues) {
  for (const char* bad : {"sim_speculative = yes\n", "sim_speculative = 2\n",
                          "sim_speculative = fast\n"}) {
    EXPECT_FALSE(ExperimentSpec::from_config(Config::parse(bad)).ok()) << bad;
  }
}

// ----------------------------------------------- sim_local_ticks key ----

TEST(SimLocalTicksKey, ParsesValidatesAndNeedsStubDomains) {
  EXPECT_DOUBLE_EQ(must_parse("").local_tick_period_s, 0.0);
  EXPECT_DOUBLE_EQ(must_parse("sim_local_ticks = 2.5\n").local_tick_period_s,
                   2.5);
  EXPECT_FALSE(ExperimentSpec::from_config(
                   Config::parse("sim_local_ticks = -1\n"))
                   .ok());
  // Ticks run per stub domain, so a domain-free topology cannot host
  // them.
  EXPECT_FALSE(ExperimentSpec::from_config(Config::parse(
                                               "topology = waxman\n"
                                               "sim_local_ticks = 2\n"))
                   .ok());
}

// ------------------------------------------------- golden result JSON ----

std::string golden_json(const std::string& base, const std::string& threads) {
  Config config = Config::parse(base);
  config.set("measure_threads", threads);
  const SpecResult parsed = ExperimentSpec::from_config(config);
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  const ExperimentSpec& spec = parsed.spec();
  ExperimentResult result = run_experiment(spec);
  // Phase wall-clock timers are the schema's only nondeterministic
  // fields; everything else must match byte-for-byte.
  result.trace.warmup_wall_ms = 0.0;
  result.trace.maintenance_wall_ms = 0.0;
  return experiment_result_json(spec, result).dump(2);
}

TEST(MeasureGolden, Fig5LikeResultJsonIdenticalAcrossThreadCounts) {
  // configs/fig5_like.conf downscaled to test time.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-g\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nnhops = 2\n";
  const std::string serial = golden_json(base, "1");
  EXPECT_EQ(serial, golden_json(base, "4"));
  EXPECT_EQ(serial, golden_json(base, "8"));
}

TEST(MeasureGolden, FaultedResultJsonIdenticalAcrossThreadCounts) {
  // Faults exercise the capture-time LinkFilter path: during the
  // partition window the sampled metric may even be +infinity (dumped
  // as null), and it must be the same null at every thread count.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-o\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nmodel_message_delays = true\n"
      "fault_loss = 0.05\nfault_jitter = 0.2\nfault_crash = 0.02\n"
      "fault_partition_domain = auto\n"
      "fault_partition_start = 300\nfault_partition_end = 600\n";
  const std::string serial = golden_json(base, "1");
  EXPECT_EQ(serial, golden_json(base, "4"));
  EXPECT_EQ(serial, golden_json(base, "8"));
}

// --------------------------------- golden result JSON, sharded core ----

std::string golden_json_shards(const std::string& base,
                               const std::string& shards,
                               const std::string& window = "") {
  Config config = Config::parse(base);
  config.set("sim_shards", shards);
  if (!window.empty()) config.set("shard_window", window);
  const SpecResult parsed = ExperimentSpec::from_config(config);
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  const ExperimentSpec& spec = parsed.spec();
  ExperimentResult result = run_experiment(spec);
  result.trace.warmup_wall_ms = 0.0;
  result.trace.maintenance_wall_ms = 0.0;
  return experiment_result_json(spec, result).dump(2);
}

TEST(SchedulerGolden, Fig5LikeResultJsonIdenticalAcrossShardCounts) {
  // configs/fig5_like.conf downscaled to test time; the acceptance bar
  // for the sharded event core is byte-identity at 1/2/4/8 shards.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-g\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nnhops = 2\n";
  const std::string serial = golden_json_shards(base, "1");
  EXPECT_EQ(serial, golden_json_shards(base, "2"));
  EXPECT_EQ(serial, golden_json_shards(base, "4"));
  EXPECT_EQ(serial, golden_json_shards(base, "8"));
  // The lock-step window width is equally invisible in the result.
  EXPECT_EQ(serial, golden_json_shards(base, "4", "0.05"));
  EXPECT_EQ(serial, golden_json_shards(base, "4", "30"));
}

TEST(SchedulerGolden, FaultedResultJsonIdenticalAcrossShardCounts) {
  // Crashes, partitions, retries and churn repair all cross shard
  // boundaries; the faulted golden is the hard case for handoff.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-o\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nmodel_message_delays = true\n"
      "fault_loss = 0.05\nfault_jitter = 0.2\nfault_crash = 0.02\n"
      "fault_partition_domain = auto\n"
      "fault_partition_start = 300\nfault_partition_end = 600\n";
  const std::string serial = golden_json_shards(base, "1");
  EXPECT_EQ(serial, golden_json_shards(base, "2"));
  EXPECT_EQ(serial, golden_json_shards(base, "4"));
  EXPECT_EQ(serial, golden_json_shards(base, "8"));
}

// --------------------------- golden result JSON, speculative core ----

struct SpeculativeRun {
  ExperimentResult result;
  std::string json;
};

SpeculativeRun run_speculative(const std::string& base,
                               const std::string& shards,
                               const std::string& speculative) {
  Config config = Config::parse(base);
  config.set("sim_shards", shards);
  config.set("sim_speculative", speculative);
  const SpecResult parsed = ExperimentSpec::from_config(config);
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  const ExperimentSpec& spec = parsed.spec();
  SpeculativeRun run{run_experiment(spec), ""};
  ExperimentResult stripped = run.result;
  stripped.trace.warmup_wall_ms = 0.0;
  stripped.trace.maintenance_wall_ms = 0.0;
  // sim.speculation is the one deliberately shard-count-dependent
  // stanza in the schema — it reports scheduler internals — so the
  // byte-identity bar applies to everything else.
  stripped.speculation_active = false;
  run.json = experiment_result_json(spec, stripped).dump(2);
  return run;
}

TEST(SpeculationGolden, PureGlobalWorkloadIdenticalAndNeverConflicts) {
  // configs/fig5_like.conf downscaled: every event is global, so an
  // armed speculative core must stand aside — zero speculated events,
  // zero conflicts — while staying byte-identical to serial.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-g\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nnhops = 2\n";
  const SpeculativeRun off = run_speculative(base, "1", "off");
  for (const char* shards : {"2", "4", "8"}) {
    const SpeculativeRun on = run_speculative(base, shards, "auto");
    EXPECT_EQ(off.json, on.json) << shards;
    EXPECT_TRUE(on.result.speculation_active) << shards;
    EXPECT_EQ(on.result.speculation_speculated, 0u) << shards;
    EXPECT_EQ(on.result.speculation_conflicts, 0u) << shards;
    EXPECT_DOUBLE_EQ(on.result.speculation_conflict_rate, 0.0) << shards;
  }
}

TEST(SpeculationGolden, LocalTickWorkloadIdenticalAndExercisesReplay) {
  // Mixing shard-local maintenance ticks with global prop traffic
  // forces both speculation (tick prefixes below the cutoff) and
  // conflict replay (ticks above it), all under the byte-identity bar.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-g\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nnhops = 2\nsim_local_ticks = 2\n";
  const SpeculativeRun off = run_speculative(base, "1", "off");
  EXPECT_GT(off.result.local_ticks, 0u);
  std::uint64_t total_speculated = 0;
  std::uint64_t total_replayed = 0;
  for (const char* shards : {"2", "4", "8"}) {
    const SpeculativeRun on = run_speculative(base, shards, "on");
    EXPECT_EQ(off.json, on.json) << shards;
    EXPECT_TRUE(on.result.speculation_active) << shards;
    EXPECT_EQ(on.result.local_ticks, off.result.local_ticks) << shards;
    EXPECT_EQ(on.result.local_tick_digest, off.result.local_tick_digest)
        << shards;
    total_speculated += on.result.speculation_speculated;
    total_replayed += on.result.speculation_replayed;
  }
  EXPECT_GT(total_speculated, 0u);
  EXPECT_GT(total_replayed, 0u);
  // `on` at one shard is legal and resolves to plain serial execution:
  // no stanza, no divergence.
  const SpeculativeRun on1 = run_speculative(base, "1", "on");
  EXPECT_EQ(off.json, on1.json);
  EXPECT_FALSE(on1.result.speculation_active);
}

TEST(SpeculationGolden, FaultedWorkloadIdenticalWithSpeculationOn) {
  // Crashes, partitions and retries all cross shard boundaries; the
  // faulted golden is the hard case for the commit-order replay.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-o\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nmodel_message_delays = true\n"
      "fault_loss = 0.05\nfault_jitter = 0.2\nfault_crash = 0.02\n"
      "fault_partition_domain = auto\n"
      "fault_partition_start = 300\nfault_partition_end = 600\n"
      "sim_local_ticks = 2\n";
  const SpeculativeRun off = run_speculative(base, "1", "off");
  const SpeculativeRun on = run_speculative(base, "4", "on");
  EXPECT_EQ(off.json, on.json);
  EXPECT_TRUE(on.result.speculation_active);
}

// ------------------------------------ fast-mode experiment equivalence ----

const char kFastFig5Base[] =
    "topology = ts-large\noverlay = gnutella\nprotocol = prop-g\n"
    "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
    "queries = 2500\nnhops = 2\n";

const char kFastFaultedBase[] =
    "topology = ts-large\noverlay = gnutella\nprotocol = prop-o\n"
    "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
    "queries = 2500\nmodel_message_delays = true\n"
    "fault_loss = 0.05\nfault_jitter = 0.2\nfault_crash = 0.02\n"
    "fault_partition_domain = auto\n"
    "fault_partition_start = 300\nfault_partition_end = 600\n";

ExperimentResult run_with_mode(const std::string& base, const char* mode,
                               const char* threads = "1") {
  Config config = Config::parse(base);
  config.set("measure_mode", mode);
  config.set("measure_threads", threads);
  const SpecResult parsed = ExperimentSpec::from_config(config);
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  return run_experiment(parsed.spec());
}

/// Asserts `fast` tracks `exact` within the documented 1e-6 relative
/// bound at every sample (infinities must agree exactly).
void expect_series_within_bound(const TimeSeries& exact,
                                const TimeSeries& fast) {
  ASSERT_EQ(exact.points().size(), fast.points().size());
  for (std::size_t i = 0; i < exact.points().size(); ++i) {
    const double e = exact.points()[i].value;
    const double f = fast.points()[i].value;
    EXPECT_EQ(exact.points()[i].time, fast.points()[i].time);
    if (std::isinf(e) || std::isinf(f)) {
      EXPECT_EQ(e, f) << "sample " << i;
      continue;
    }
    EXPECT_NEAR(f, e, 1e-6 * std::max(std::fabs(e), 1.0)) << "sample " << i;
  }
}

TEST(MeasureFastGolden, Fig5LikeSeriesWithinBoundOfExact) {
  const ExperimentResult exact = run_with_mode(kFastFig5Base, "exact");
  const ExperimentResult fast = run_with_mode(kFastFig5Base, "fast");
  expect_series_within_bound(exact.series, fast.series);
  EXPECT_GT(exact.measure_exact_floods, 0u);
  EXPECT_EQ(exact.measure_fast_floods, 0u);
  EXPECT_GT(fast.measure_fast_floods, 0u);
  EXPECT_EQ(fast.measure_exact_floods, 0u);
  // Same tick schedule on both sides => same flood demand.
  EXPECT_EQ(exact.measure_exact_floods, fast.measure_fast_floods);
}

TEST(MeasureFastGolden, FaultedSeriesWithinBoundOfExact) {
  const ExperimentResult exact = run_with_mode(kFastFaultedBase, "exact");
  const ExperimentResult fast = run_with_mode(kFastFaultedBase, "fast");
  expect_series_within_bound(exact.series, fast.series);
}

TEST(MeasureFastGolden, ResultJsonIdenticalAcrossThreadCounts) {
  // The fast kernel's distances are exact over the quantized weights,
  // so fast mode inherits the full thread-count byte-identity contract
  // on both the fig5-like and the faulted configs.
  for (const char* base : {kFastFig5Base, kFastFaultedBase}) {
    const std::string with_mode =
        std::string(base) + "measure_mode = fast\n";
    const std::string serial = golden_json(with_mode, "1");
    EXPECT_EQ(serial, golden_json(with_mode, "2"));
    EXPECT_EQ(serial, golden_json(with_mode, "4"));
    EXPECT_EQ(serial, golden_json(with_mode, "8"));
  }
}

// -------------------------------------- counters v5 / measure stanza ----

TEST(MeasureCounters, V5ExposesKernelAndSnapshotCounters) {
  EXPECT_EQ(ExperimentResult::kCountersVersion, 7);
  const ExperimentResult result = run_with_mode(kFastFig5Base, "exact");
  // Every sampler tick asked the cache for a snapshot: the capture /
  // reuse split depends on the trace build mode, but the total is the
  // tick count either way.
  EXPECT_EQ(result.measure_snapshot_captures + result.measure_snapshot_reuses,
            result.series.points().size());
  EXPECT_GT(result.measure_snapshot_captures, 0u);

  Config config = Config::parse(kFastFig5Base);
  const SpecResult parsed = ExperimentSpec::from_config(config);
  ASSERT_TRUE(parsed.ok());
  const Json json = experiment_result_json(parsed.spec(), result);
  const Json* counters = json.find("counters");
  ASSERT_NE(counters, nullptr);
  for (const char* name :
       {"measure_exact_floods", "measure_fast_floods",
        "measure_snapshot_captures", "measure_snapshot_reuses"}) {
    EXPECT_NE(counters->find(name), nullptr) << name;
  }
  const Json* measure = json.find("measure");
  ASSERT_NE(measure, nullptr);
  ASSERT_NE(measure->find("mode"), nullptr);
  EXPECT_EQ(measure->find("mode")->as_string(), "exact");
  const Json* spec_json = json.find("spec");
  ASSERT_NE(spec_json, nullptr);
  ASSERT_NE(spec_json->find("measure_mode"), nullptr);
  EXPECT_EQ(spec_json->find("measure_mode")->as_string(), "exact");
}

}  // namespace
}  // namespace propsim
