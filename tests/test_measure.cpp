// Measurement engine: snapshot fidelity, parallel determinism (results
// bit-identical to the serial path for any thread count), scratch
// reuse, the measure_threads config key, and golden whole-experiment
// JSON across thread counts.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/experiment.h"
#include "app/result_json.h"
#include "chord/chord_ring.h"
#include "common/config.h"
#include "fixtures.h"
#include "measure/measure_engine.h"
#include "metrics/metrics.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

// ----------------------------------------------------- OverlaySnapshot ----

TEST(OverlaySnapshot, MirrorsLiveAdjacencyAndLatencies) {
  auto fx = UnstructuredFixture::make(40, 7001);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  const LogicalGraph& g = fx.net.graph();
  ASSERT_EQ(snap.slot_count(), g.slot_count());
  EXPECT_EQ(snap.edge_count(), 2 * g.edge_count());
  for (SlotId s = 0; s < g.slot_count(); ++s) {
    EXPECT_EQ(snap.is_active(s), g.is_active(s));
    const auto targets = snap.targets(s);
    const auto lats = snap.latencies(s);
    const auto nbrs = g.neighbors(s);
    ASSERT_EQ(targets.size(), nbrs.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      EXPECT_EQ(targets[i], nbrs[i]);
      // Precomputed edge latency is the identical double slot_latency
      // returns — the determinism contract depends on exact equality.
      EXPECT_EQ(lats[i], fx.net.slot_latency(s, nbrs[i]));
    }
  }
}

TEST(OverlaySnapshot, LinkFilterPrunesAtCapture) {
  auto fx = UnstructuredFixture::make(40, 7002);
  const OverlayNetwork::LinkFilter drop = [](SlotId a, SlotId b) {
    return (a + b) % 3 != 0;
  };
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net, &drop);
  for (SlotId s = 0; s < snap.slot_count(); ++s) {
    for (const SlotId t : snap.targets(s)) EXPECT_TRUE(drop(s, t));
  }
  // Pruned-at-capture == skipped-at-relax: floods over the snapshot must
  // equal live floods under the same filter, unreachable slots included.
  MeasureScratch scratch;
  for (const SlotId src : {SlotId{0}, SlotId{5}, SlotId{17}}) {
    flood_snapshot(snap, src, nullptr, scratch);
    const auto live = fx.net.flood_latencies(src, nullptr, &drop);
    for (SlotId v = 0; v < live.size(); ++v) {
      EXPECT_EQ(scratch.distance(v), live[v]) << "src " << src << " v " << v;
    }
  }
}

TEST(FloodSnapshot, MatchesLiveFloodWithProcessingDelays) {
  auto fx = UnstructuredFixture::make(50, 7003);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  std::vector<double> proc(fx.net.graph().slot_count(), 0.0);
  for (std::size_t s = 0; s < proc.size(); s += 3) proc[s] = 7.5;
  MeasureScratch scratch;  // reused across every source
  for (SlotId src = 0; src < 50; ++src) {
    flood_snapshot(snap, src, &proc, scratch);
    const auto live = fx.net.flood_latencies(src, &proc);
    for (SlotId v = 0; v < live.size(); ++v) {
      EXPECT_EQ(scratch.distance(v), live[v]) << "src " << src << " v " << v;
    }
  }
}

// ------------------------------------------------------- MeasureEngine ----

TEST(MeasureEngine, LookupLatenciesBitIdenticalAcrossThreadCounts) {
  auto fx = UnstructuredFixture::make(60, 7004);
  Rng rng(9);
  const auto queries = sample_query_pairs(fx.net.graph(), 400, rng);
  const OverlaySnapshot snap = OverlaySnapshot::capture(fx.net);
  MeasureEngine serial(1);
  const auto want = serial.lookup_latencies(snap, queries);
  const double want_avg = serial.average_lookup_latency(snap, queries);
  for (const std::size_t t : {2, 4, 8}) {
    MeasureEngine engine(t);
    EXPECT_EQ(engine.thread_count(), t);
    EXPECT_EQ(engine.lookup_latencies(snap, queries), want);
    EXPECT_EQ(engine.average_lookup_latency(snap, queries), want_avg);
  }
}

TEST(MeasureEngine, MatchesHistoricalSerialHelpers) {
  auto fx = UnstructuredFixture::make(50, 7005);
  Rng rng(10);
  const auto queries = sample_query_pairs(fx.net.graph(), 250, rng);
  MeasureEngine engine(4);
  EXPECT_EQ(engine.lookup_latencies(OverlaySnapshot::capture(fx.net), queries),
            unstructured_lookup_latencies(fx.net, queries));
  EXPECT_EQ(engine.average_direct_latency(fx.net, queries),
            average_direct_latency(fx.net, queries));
}

TEST(MeasureEngine, StretchBitIdenticalOnChordRouter) {
  Rng rng(11);
  auto fx = UnstructuredFixture::make(40, 7006);
  const auto ring = ChordRing::build_random(40, ChordConfig{}, rng);
  const auto router = chord_router(fx.net, ring);
  const auto queries = sample_query_pairs(fx.net.graph(), 300, rng);
  MeasureEngine serial(1);
  MeasureEngine parallel(4);
  EXPECT_EQ(serial.route_latencies(queries, router),
            parallel.route_latencies(queries, router));
  EXPECT_EQ(serial.direct_latencies(fx.net, queries),
            parallel.direct_latencies(fx.net, queries));
  const StretchResult a = serial.stretch(fx.net, queries, router);
  const StretchResult b = parallel.stretch(fx.net, queries, router);
  EXPECT_EQ(a.logical_al, b.logical_al);
  EXPECT_EQ(a.physical_al, b.physical_al);
  EXPECT_EQ(a.stretch, b.stretch);
}

TEST(MeasureEngine, ScratchReusedAcrossChangingSnapshots) {
  auto fx = UnstructuredFixture::make(40, 7007);
  Rng rng(12);
  const auto queries = sample_query_pairs(fx.net.graph(), 200, rng);
  MeasureEngine reused(4);
  const OverlaySnapshot before = OverlaySnapshot::capture(fx.net);
  const auto r_before = reused.lookup_latencies(before, queries);

  // Rewire the overlay; the old snapshot must stay valid and the reused
  // engine must agree with a fresh one on both snapshots.
  LogicalGraph& g = fx.net.graph();
  const SlotId drop = g.neighbors(0).front();
  g.remove_edge(0, drop);
  SlotId add = 1;
  while (add == drop || g.has_edge(0, add)) ++add;
  g.add_edge(0, add);
  const OverlaySnapshot after = OverlaySnapshot::capture(fx.net);
  const auto r_after = reused.lookup_latencies(after, queries);

  MeasureEngine fresh(4);
  EXPECT_EQ(fresh.lookup_latencies(after, queries), r_after);
  EXPECT_EQ(fresh.lookup_latencies(before, queries), r_before);
}

// ------------------------------------------------ measure_threads key ----

ExperimentSpec must_parse(const std::string& text) {
  const SpecResult parsed = ExperimentSpec::from_config(Config::parse(text));
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  return parsed.ok() ? parsed.spec() : ExperimentSpec{};
}

TEST(MeasureThreadsKey, DefaultsToSerial) {
  EXPECT_EQ(must_parse("").measure_threads, 1u);
}

TEST(MeasureThreadsKey, ParsesAutoAndCounts) {
  EXPECT_EQ(must_parse("measure_threads = auto\n").measure_threads,
            ExperimentSpec::kMeasureThreadsAuto);
  EXPECT_EQ(must_parse("measure_threads = 0\n").measure_threads, 0u);
  EXPECT_EQ(must_parse("measure_threads = 6\n").measure_threads, 6u);
}

TEST(MeasureThreadsKey, RejectsNegativeAndGarbage) {
  for (const char* bad : {"measure_threads = -2\n", "measure_threads = up\n"}) {
    const SpecResult parsed =
        ExperimentSpec::from_config(Config::parse(bad));
    EXPECT_FALSE(parsed.ok()) << bad;
  }
}

// --------------------------------------------------- sim_shards key ----

TEST(SimShardsKey, DefaultsToSerial) {
  EXPECT_EQ(must_parse("").sim_shards, 1u);
  EXPECT_DOUBLE_EQ(must_parse("").shard_window_s, 0.25);
}

TEST(SimShardsKey, ParsesAutoCountsAndWindow) {
  EXPECT_EQ(must_parse("sim_shards = auto\n").sim_shards,
            ExperimentSpec::kSimShardsAuto);
  EXPECT_EQ(must_parse("sim_shards = 0\n").sim_shards, 0u);
  EXPECT_EQ(must_parse("sim_shards = 8\n").sim_shards, 8u);
  EXPECT_DOUBLE_EQ(
      must_parse("sim_shards = 4\nshard_window = 0.5\n").shard_window_s,
      0.5);
}

TEST(SimShardsKey, RejectsBadValuesAndCombinations) {
  for (const char* bad : {
           "sim_shards = -2\n",                    // negative
           "sim_shards = up\n",                    // garbage
           "sim_shards = 65\n",                    // above kMaxShards
           "sim_shards = 4\nshard_window = 0\n",   // non-positive window
           "shard_window = 0.5\n",                 // window without shards
           "sim_shards = 1\nshard_window = 0.5\n",  // window on serial core
           "sim_shards = 4\ntopology = waxman\n",  // needs stub domains
           "sim_shards = auto\nmeasure_threads = auto\n",  // both auto
       }) {
    EXPECT_FALSE(ExperimentSpec::from_config(Config::parse(bad)).ok()) << bad;
  }
}

TEST(SimShardsKey, MisspelledKeyGetsDidYouMeanHint) {
  const SpecResult parsed =
      ExperimentSpec::from_config(Config::parse("sim_shard = 4\n"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_report().find("sim_shards"), std::string::npos)
      << parsed.error_report();
}

// ------------------------------------------------- golden result JSON ----

std::string golden_json(const std::string& base, const std::string& threads) {
  Config config = Config::parse(base);
  config.set("measure_threads", threads);
  const SpecResult parsed = ExperimentSpec::from_config(config);
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  const ExperimentSpec& spec = parsed.spec();
  ExperimentResult result = run_experiment(spec);
  // Phase wall-clock timers are the schema's only nondeterministic
  // fields; everything else must match byte-for-byte.
  result.trace.warmup_wall_ms = 0.0;
  result.trace.maintenance_wall_ms = 0.0;
  return experiment_result_json(spec, result).dump(2);
}

TEST(MeasureGolden, Fig5LikeResultJsonIdenticalAcrossThreadCounts) {
  // configs/fig5_like.conf downscaled to test time.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-g\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nnhops = 2\n";
  const std::string serial = golden_json(base, "1");
  EXPECT_EQ(serial, golden_json(base, "4"));
  EXPECT_EQ(serial, golden_json(base, "8"));
}

TEST(MeasureGolden, FaultedResultJsonIdenticalAcrossThreadCounts) {
  // Faults exercise the capture-time LinkFilter path: during the
  // partition window the sampled metric may even be +infinity (dumped
  // as null), and it must be the same null at every thread count.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-o\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nmodel_message_delays = true\n"
      "fault_loss = 0.05\nfault_jitter = 0.2\nfault_crash = 0.02\n"
      "fault_partition_domain = auto\n"
      "fault_partition_start = 300\nfault_partition_end = 600\n";
  const std::string serial = golden_json(base, "1");
  EXPECT_EQ(serial, golden_json(base, "4"));
  EXPECT_EQ(serial, golden_json(base, "8"));
}

// --------------------------------- golden result JSON, sharded core ----

std::string golden_json_shards(const std::string& base,
                               const std::string& shards,
                               const std::string& window = "") {
  Config config = Config::parse(base);
  config.set("sim_shards", shards);
  if (!window.empty()) config.set("shard_window", window);
  const SpecResult parsed = ExperimentSpec::from_config(config);
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  const ExperimentSpec& spec = parsed.spec();
  ExperimentResult result = run_experiment(spec);
  result.trace.warmup_wall_ms = 0.0;
  result.trace.maintenance_wall_ms = 0.0;
  return experiment_result_json(spec, result).dump(2);
}

TEST(SchedulerGolden, Fig5LikeResultJsonIdenticalAcrossShardCounts) {
  // configs/fig5_like.conf downscaled to test time; the acceptance bar
  // for the sharded event core is byte-identity at 1/2/4/8 shards.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-g\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nnhops = 2\n";
  const std::string serial = golden_json_shards(base, "1");
  EXPECT_EQ(serial, golden_json_shards(base, "2"));
  EXPECT_EQ(serial, golden_json_shards(base, "4"));
  EXPECT_EQ(serial, golden_json_shards(base, "8"));
  // The lock-step window width is equally invisible in the result.
  EXPECT_EQ(serial, golden_json_shards(base, "4", "0.05"));
  EXPECT_EQ(serial, golden_json_shards(base, "4", "30"));
}

TEST(SchedulerGolden, FaultedResultJsonIdenticalAcrossShardCounts) {
  // Crashes, partitions, retries and churn repair all cross shard
  // boundaries; the faulted golden is the hard case for handoff.
  const std::string base =
      "topology = ts-large\noverlay = gnutella\nprotocol = prop-o\n"
      "nodes = 300\nhorizon = 900\nsample_interval = 100\n"
      "queries = 2500\nmodel_message_delays = true\n"
      "fault_loss = 0.05\nfault_jitter = 0.2\nfault_crash = 0.02\n"
      "fault_partition_domain = auto\n"
      "fault_partition_start = 300\nfault_partition_end = 600\n";
  const std::string serial = golden_json_shards(base, "1");
  EXPECT_EQ(serial, golden_json_shards(base, "2"));
  EXPECT_EQ(serial, golden_json_shards(base, "4"));
  EXPECT_EQ(serial, golden_json_shards(base, "8"));
}

}  // namespace
}  // namespace propsim
