#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/ltm.h"
#include "baselines/pis.h"
#include "baselines/selfish.h"
#include "baselines/topo_can.h"
#include "chord/chord_ring.h"
#include "fixtures.h"
#include "sim/simulator.h"
#include "workload/host_selection.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

// ----------------------------------------------------------------- LTM ----

TEST(Ltm, RoundPreservesConnectivity) {
  auto fx = UnstructuredFixture::make(50, 4001);
  LtmParams params;
  Rng rng(1);
  for (int round = 0; round < 5; ++round) {
    for (const SlotId s : fx.net.graph().active_slots()) {
      ltm_round(fx.net, s, params);
      ASSERT_TRUE(fx.net.graph().active_subgraph_connected());
    }
  }
}

TEST(Ltm, RespectsMinDegreeFloor) {
  auto fx = UnstructuredFixture::make(50, 4002);
  LtmParams params;
  params.min_degree = 2;
  for (int round = 0; round < 5; ++round) {
    for (const SlotId s : fx.net.graph().active_slots()) {
      ltm_round(fx.net, s, params);
    }
  }
  EXPECT_GE(fx.net.graph().min_active_degree(), 2u);
}

TEST(Ltm, ReducesAverageLogicalLinkLatency) {
  auto fx = UnstructuredFixture::make(60, 4003);
  const double before = fx.net.average_logical_link_latency();
  LtmParams params;
  for (int round = 0; round < 6; ++round) {
    for (const SlotId s : fx.net.graph().active_slots()) {
      ltm_round(fx.net, s, params);
    }
  }
  EXPECT_LT(fx.net.average_logical_link_latency(), before);
}

TEST(Ltm, CutsDominatedTriangleEdge) {
  // Triangle where (0,2) is strictly dominated by 0-1-2.
  Graph phys(3);
  phys.add_edge(0, 1, 1.0);
  phys.add_edge(1, 2, 1.0);
  phys.add_edge(0, 2, 10.0);
  LatencyOracle oracle(phys);
  LogicalGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  Placement p(3, 3);
  for (SlotId s = 0; s < 3; ++s) p.bind(s, s);
  OverlayNetwork net(std::move(g), std::move(p), oracle);
  LtmParams params;
  params.min_degree = 1;
  ltm_round(net, 0, params);
  EXPECT_FALSE(net.graph().has_edge(0, 2));
  EXPECT_TRUE(net.graph().active_subgraph_connected());
}

TEST(Ltm, DoesNotPreserveDegrees) {
  // LTM's defining difference from PROP-O: degree distribution drifts.
  auto fx = UnstructuredFixture::make(60, 4004);
  const auto before = fx.net.graph().degree_multiset();
  LtmParams params;
  for (int round = 0; round < 6; ++round) {
    for (const SlotId s : fx.net.graph().active_slots()) {
      ltm_round(fx.net, s, params);
    }
  }
  EXPECT_NE(fx.net.graph().degree_multiset(), before);
}

TEST(Ltm, EngineRunsPeriodically) {
  auto fx = UnstructuredFixture::make(40, 4005);
  Simulator sim;
  LtmParams params;
  params.interval_s = 10.0;
  LtmEngine engine(fx.net, sim, params, 2);
  engine.start();
  sim.run_until(100.0);
  EXPECT_GE(engine.rounds(), 40u * 8u);
  EXPECT_GT(engine.links_changed(), 0u);
  engine.stop();
  const auto rounds = engine.rounds();
  sim.run_until(200.0);
  EXPECT_EQ(engine.rounds(), rounds);
}

// ----------------------------------------------------------------- PIS ----

TEST(Pis, OrderingSortsLandmarksByLatency) {
  Graph phys(4);
  phys.add_edge(0, 1, 1.0);
  phys.add_edge(0, 2, 5.0);
  phys.add_edge(0, 3, 3.0);
  LatencyOracle oracle(phys);
  const std::vector<NodeId> landmarks{1, 2, 3};
  const auto order = landmark_ordering(0, landmarks, oracle);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(Pis, IdentifiersAreDistinct) {
  Rng rng(3);
  auto fx = UnstructuredFixture::make(40, 4006);
  const auto landmarks = select_landmarks(fx.topo, 3, rng);
  const auto hosts = fx.net.placement().bound_hosts();
  const auto ids = pis_identifiers(hosts, landmarks, fx.oracle, rng);
  std::set<ChordId> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), ids.size());
}

TEST(Pis, RingNeighborsArePhysicallyCloserThanRandom) {
  Rng rng(4);
  auto fx = UnstructuredFixture::make(60, 4007);
  const auto landmarks = select_landmarks(fx.topo, 4, rng);
  const auto hosts = fx.net.placement().bound_hosts();
  const auto pis_ids = pis_identifiers(hosts, landmarks, fx.oracle, rng);

  auto ring_neighbor_latency = [&](const std::vector<ChordId>& ids) {
    const auto ring = ChordRing::build_with_ids(ids, ChordConfig{});
    double sum = 0.0;
    for (SlotId s = 0; s < ring.size(); ++s) {
      sum += fx.oracle.latency(hosts[s], hosts[ring.ring_successor(s)]);
    }
    return sum / static_cast<double>(ring.size());
  };

  std::vector<ChordId> random_ids;
  std::set<ChordId> seen;
  while (random_ids.size() < hosts.size()) {
    const ChordId id = rng.next();
    if (seen.insert(id).second) random_ids.push_back(id);
  }
  EXPECT_LT(ring_neighbor_latency(pis_ids),
            ring_neighbor_latency(random_ids));
}

// ----------------------------------------------------------- Topo-CAN ----

TEST(TopoCan, MortonKeyPreservesLocality) {
  // Nearby points get nearby keys; the far corner gets a far key.
  const CanPoint a{100, 100};
  const CanPoint b{101, 100};
  const CanPoint far{kCanSpan - 1, kCanSpan - 1};
  EXPECT_LT(morton_key(b) - morton_key(a),
            morton_key(far) - morton_key(a));
  EXPECT_EQ(morton_key(CanPoint{0, 0}), 0u);
}

TEST(TopoCan, AssignmentIsPermutationOfHosts) {
  Rng rng(41);
  auto fx = UnstructuredFixture::make(40, 4020);
  const auto space = CanSpace::build(40, rng);
  const auto hosts = fx.net.placement().bound_hosts();
  const auto landmarks = select_landmarks(fx.topo, 3, rng);
  const auto assigned =
      topo_aware_can_assignment(space, hosts, landmarks, fx.oracle, rng);
  ASSERT_EQ(assigned.size(), hosts.size());
  std::set<NodeId> a(assigned.begin(), assigned.end());
  std::set<NodeId> b(hosts.begin(), hosts.end());
  EXPECT_EQ(a, b);
}

TEST(TopoCan, NeighborZonesArePhysicallyCloserThanRandom) {
  Rng rng(43);
  auto fx = UnstructuredFixture::make(60, 4021);
  const auto space = CanSpace::build(60, rng);
  const auto hosts = fx.net.placement().bound_hosts();
  const auto landmarks = select_landmarks(fx.topo, 4, rng);
  const auto topo_hosts =
      topo_aware_can_assignment(space, hosts, landmarks, fx.oracle, rng);

  auto avg_neighbor_latency = [&](std::span<const NodeId> by_slot) {
    double sum = 0.0;
    std::size_t count = 0;
    for (SlotId s = 0; s < space.size(); ++s) {
      for (const SlotId t : space.neighbors(s)) {
        sum += fx.oracle.latency(by_slot[s], by_slot[t]);
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_LT(avg_neighbor_latency(topo_hosts), avg_neighbor_latency(hosts));
}

// ------------------------------------------------------------- Selfish ----

TEST(Selfish, StepImprovesActingNode) {
  auto fx = UnstructuredFixture::make(50, 4008);
  Rng rng(5);
  SelfishParams params;
  int rewired = 0;
  for (int i = 0; i < 300 && rewired < 30; ++i) {
    const auto slots = fx.net.graph().active_slots();
    const SlotId u =
        slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    const double before = fx.net.neighbor_latency_sum(u);
    const auto outcome = selfish_step(fx.net, u, params, rng);
    if (outcome.rewired) {
      ++rewired;
      EXPECT_GT(outcome.gain, 0.0);
      EXPECT_NEAR(fx.net.neighbor_latency_sum(u), before - outcome.gain,
                  1e-9);
    }
  }
  EXPECT_GT(rewired, 0);
}

TEST(Selfish, PreservesOwnDegreeButNotOthers) {
  auto fx = UnstructuredFixture::make(50, 4009);
  Rng rng(6);
  SelfishParams params;
  const auto before = fx.net.graph().degree_multiset();
  int rewired = 0;
  for (int i = 0; i < 500 && rewired < 60; ++i) {
    const auto slots = fx.net.graph().active_slots();
    const SlotId u =
        slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    const std::size_t deg_u = fx.net.graph().degree(u);
    if (selfish_step(fx.net, u, params, rng).rewired) {
      ++rewired;
      EXPECT_EQ(fx.net.graph().degree(u), deg_u);
    }
  }
  ASSERT_GT(rewired, 10);
  EXPECT_NE(fx.net.graph().degree_multiset(), before);
}

TEST(Selfish, RespectsMinDegreeGuard) {
  auto fx = UnstructuredFixture::make(50, 4010);
  Rng rng(7);
  SelfishParams params;
  params.min_degree = 3;
  for (int i = 0; i < 400; ++i) {
    const auto slots = fx.net.graph().active_slots();
    const SlotId u =
        slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    selfish_step(fx.net, u, params, rng);
  }
  EXPECT_GE(fx.net.graph().min_active_degree(), 3u);
}

}  // namespace
}  // namespace propsim
