#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/invariant_checker.h"
#include "analysis/lint_rules.h"
#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "core/prop_engine.h"
#include "fixtures.h"
#include "sim/simulator.h"

namespace propsim {
namespace {

/// Runs one named rule over the context.
LintReport run_rule(const std::string& name, const LintContext& ctx) {
  return InvariantChecker(std::vector<std::string>{name}).run(ctx);
}

SnapshotGraph triangle() {
  SnapshotGraph g;
  g.node_count = 3;
  g.edges = {{0, 1}, {1, 2}, {0, 2}};
  return g;
}

// ------------------------------------------------------- snapshot loading

TEST(SnapshotGraph, LenientParserKeepsBrokenEdges) {
  const std::string text =
      "# corrupt dump\n"
      "nodes 4\n"
      "0 1 1.5\n"
      "2 2 1.0\n"   // self-loop
      "0 1 2.0\n"   // parallel edge
      "3 9 1.0\n";  // out-of-range endpoint
  SnapshotGraph snap;
  ASSERT_TRUE(snapshot_from_edge_list(text, snap, nullptr));
  EXPECT_EQ(snap.node_count, 4u);
  EXPECT_EQ(snap.edges.size(), 4u);
}

TEST(SnapshotGraph, ParserRejectsMissingHeader) {
  SnapshotGraph snap;
  std::string err;
  EXPECT_FALSE(snapshot_from_edge_list("0 1 1.0\n", snap, &err));
  EXPECT_FALSE(err.empty());
}

TEST(SnapshotGraph, SnapshotOfLogicalGraphMatchesEdges) {
  LogicalGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.deactivate_slot(3);
  const SnapshotGraph snap = snapshot_of(g);
  EXPECT_EQ(snap.node_count, 4u);
  EXPECT_EQ(snap.edges.size(), 2u);
  EXPECT_EQ(snap.degree_multiset(),
            (std::vector<std::size_t>{0, 1, 1, 2}));
}

// ----------------------------------------------------------- graph rules

TEST(LintRules, EdgeRangeFlagsOutOfRangeEndpoint) {
  SnapshotGraph g = triangle();
  g.edges.emplace_back(1, 7);
  const LintContext ctx{.graph = &g};
  const LintReport report = run_rule("edge-range", ctx);
  EXPECT_FALSE(report.passed());
  EXPECT_NE(report.to_string().find("edge-range"), std::string::npos);
}

TEST(LintRules, SelfLoopFlaggedCleanPasses) {
  SnapshotGraph ok = triangle();
  const LintContext ok_ctx{.graph = &ok};
  EXPECT_TRUE(run_rule("no-self-loops", ok_ctx).passed());

  SnapshotGraph bad = triangle();
  bad.edges.emplace_back(1, 1);
  const LintContext bad_ctx{.graph = &bad};
  const LintReport report = run_rule("no-self-loops", bad_ctx);
  ASSERT_EQ(report.error_count(), 1u);
  EXPECT_NE(report.findings[0].message.find("self-loop"),
            std::string::npos);
}

TEST(LintRules, ParallelEdgeFlaggedInEitherOrientation) {
  SnapshotGraph bad = triangle();
  bad.edges.emplace_back(2, 1);  // duplicates 1-2, reversed
  const LintContext ctx{.graph = &bad};
  EXPECT_EQ(run_rule("no-parallel-edges", ctx).error_count(), 1u);

  SnapshotGraph ok = triangle();
  const LintContext ok_ctx{.graph = &ok};
  EXPECT_TRUE(run_rule("no-parallel-edges", ok_ctx).passed());
}

TEST(LintRules, ConnectivityFlagsSplitOverlay) {
  SnapshotGraph bad;
  bad.node_count = 4;
  bad.edges = {{0, 1}, {2, 3}};  // two components
  const LintContext ctx{.graph = &bad};
  const LintReport report = run_rule("connectivity", ctx);
  EXPECT_FALSE(report.passed());
}

TEST(LintRules, ConnectivityTreatsIsolatedSlotsAsWarning) {
  SnapshotGraph g = triangle();
  g.node_count = 5;  // slots 3 and 4 isolated (inactive in a dump)
  const LintContext ctx{.graph = &g};
  const LintReport report = run_rule("connectivity", ctx);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(LintRules, DegreeConservationDetectsDivergence) {
  SnapshotGraph before = triangle();
  // A PROP-O style rewire that conserves the multiset: 0-1,1-2,0-2 has
  // degrees {2,2,2}; so does any relabelled triangle.
  SnapshotGraph same;
  same.node_count = 3;
  same.edges = {{2, 0}, {0, 1}, {1, 2}};
  LintContext ok_ctx;
  ok_ctx.graph = &same;
  ok_ctx.baseline = &before;
  EXPECT_TRUE(run_rule("degree-conservation", ok_ctx).passed());

  SnapshotGraph lost;
  lost.node_count = 3;
  lost.edges = {{0, 1}, {1, 2}};  // degrees {1,1,2}
  LintContext bad_ctx;
  bad_ctx.graph = &lost;
  bad_ctx.baseline = &before;
  EXPECT_FALSE(run_rule("degree-conservation", bad_ctx).passed());
}

TEST(LintRules, DegreeConservationNeedsBaseline) {
  SnapshotGraph g = triangle();
  const LintContext ctx{.graph = &g};
  const LintReport report = run_rule("degree-conservation", ctx);
  EXPECT_EQ(report.rules_run, 0u);
  EXPECT_EQ(report.rules_skipped, 1u);
}

// --------------------------------------------------- PROP-G isomorphism

TEST(LintRules, PropGIsomorphismSlotLevel) {
  SnapshotGraph before = triangle();
  SnapshotGraph same;
  same.node_count = 3;
  same.edges = {{2, 0}, {1, 0}, {2, 1}};  // same set, shuffled/reversed
  LintContext ok_ctx;
  ok_ctx.graph = &same;
  ok_ctx.baseline = &before;
  EXPECT_TRUE(run_rule("prop-g-isomorphism", ok_ctx).passed());

  SnapshotGraph rewired;
  rewired.node_count = 3;
  rewired.edges = {{0, 1}, {1, 2}};
  LintContext bad_ctx;
  bad_ctx.graph = &rewired;
  bad_ctx.baseline = &before;
  EXPECT_FALSE(run_rule("prop-g-isomorphism", bad_ctx).passed());
}

TEST(LintRules, PropGIsomorphismAcceptsPlacementSwap) {
  LogicalGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Placement before(3, 10);
  before.bind(0, 4);
  before.bind(1, 5);
  before.bind(2, 6);
  Placement after = before;
  after.swap_slots(0, 2);  // the PROP-G primitive
  const SnapshotGraph snap = snapshot_of(g);
  LintContext ctx;
  ctx.graph = &snap;
  ctx.baseline = &snap;
  ctx.placement = &after;
  ctx.baseline_placement = &before;
  EXPECT_TRUE(run_rule("prop-g-isomorphism", ctx).passed());
}

TEST(LintRules, PropGIsomorphismFlagsMembershipChange) {
  LogicalGraph g(3);
  g.add_edge(0, 1);
  Placement before(3, 10);
  before.bind(0, 4);
  before.bind(1, 5);
  before.bind(2, 6);
  Placement after = before;
  after.unbind(2);  // a slot silently lost its host
  const SnapshotGraph snap = snapshot_of(g);
  LintContext ctx;
  ctx.graph = &snap;
  ctx.baseline = &snap;
  ctx.placement = &after;
  ctx.baseline_placement = &before;
  EXPECT_FALSE(run_rule("prop-g-isomorphism", ctx).passed());
}

// ------------------------------------------------------- placement rule

TEST(LintRules, PlacementBijectionAcceptsChurnedPlacement) {
  Placement p(6, 12);
  p.bind(0, 3);
  p.bind(1, 7);
  p.bind(2, 9);
  p.unbind(1);
  p.bind(1, 11);
  p.swap_slots(0, 2);
  LintContext ctx;
  ctx.placement = &p;
  const LintReport report = run_rule("placement-bijection", ctx);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.rules_run, 1u);
}

// ------------------------------------------------------ substrate rules

TEST(LintRules, ChordMonotonicityHoldsForBuiltRings) {
  Rng rng(20070901);
  const ChordRing random_ring = ChordRing::build_random(32, {}, rng);
  LintContext ctx;
  ctx.chord = &random_ring;
  EXPECT_TRUE(run_rule("chord-monotonicity", ctx).passed());

  // Caller-chosen ids (the PIS baseline path) must audit clean too.
  std::vector<ChordId> ids;
  for (ChordId i = 0; i < 16; ++i) ids.push_back(i * 1000 + 17);
  const ChordRing pis_ring = ChordRing::build_with_ids(ids, {});
  ctx.chord = &pis_ring;
  EXPECT_TRUE(run_rule("chord-monotonicity", ctx).passed());
}

TEST(LintRules, CanTilingHoldsForBuiltSpaces) {
  Rng rng(42);
  const CanSpace space = CanSpace::build(24, rng);
  LintContext ctx;
  ctx.can = &space;
  EXPECT_TRUE(run_rule("can-tiling", ctx).passed());
}

// ------------------------------------------------------ checker plumbing

TEST(InvariantChecker, RegistryContainsCatalog) {
  register_builtin_lint_rules();
  const auto& reg = LintRuleRegistry::instance();
  for (const char* name :
       {"edge-range", "no-self-loops", "no-parallel-edges", "connectivity",
        "degree-conservation", "prop-g-isomorphism", "placement-bijection",
        "chord-monotonicity", "can-tiling", "partition-closure",
        "negotiation-locks"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("no-such-rule"), nullptr);
}

TEST(InvariantChecker, FullRunOverLiveOverlayPasses) {
  auto fx = testing::UnstructuredFixture::make(40, 7);
  const SnapshotGraph snap = snapshot_of(fx.net.graph());
  LintContext ctx;
  ctx.graph = &snap;
  ctx.baseline = &snap;
  ctx.placement = &fx.net.placement();
  ctx.baseline_placement = &fx.net.placement();
  const InvariantChecker checker;  // every registered rule
  const LintReport report = checker.run(ctx);
  EXPECT_TRUE(report.passed()) << report.to_string();
  // chord + can structures absent, partition + lock views not supplied.
  EXPECT_EQ(report.rules_skipped, 4u);
}

TEST(InvariantChecker, PropGRunPreservesAllInvariants) {
  auto fx = testing::UnstructuredFixture::make(40, 11);
  const SnapshotGraph baseline = snapshot_of(fx.net.graph());
  const Placement baseline_placement = fx.net.placement();

  Simulator sim;
  PropParams params;
  params.mode = PropMode::kPropG;
  PropEngine engine(fx.net, sim, params, 13);
  engine.start();
  sim.run_until(600.0);
  ASSERT_GT(engine.stats().exchanges, 0u);

  const SnapshotGraph snap = snapshot_of(fx.net.graph());
  LintContext ctx;
  ctx.graph = &snap;
  ctx.baseline = &baseline;
  ctx.placement = &fx.net.placement();
  ctx.baseline_placement = &baseline_placement;
  const LintReport report = InvariantChecker().run(ctx);
  EXPECT_TRUE(report.passed()) << report.to_string();
}

TEST(Simulator, AuditHookFiresAtInterval) {
  Simulator sim;
  int fired = 0;
  sim.set_audit([&](const Scheduler&) { ++fired; }, 3);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_in(static_cast<double>(i), [] {});
  }
  sim.run_all();
  EXPECT_EQ(fired, 3);  // after events 3, 6, 9
  sim.set_audit(nullptr, 0);  // uninstall must be accepted
}

TEST(InvariantChecker, ParanoidAuditMatchesBuildFlag) {
  auto fx = testing::UnstructuredFixture::make(30, 5);
  Simulator sim;
  const bool installed = install_paranoid_audit(sim, fx.net, 2);
  EXPECT_EQ(installed, paranoid_checks_enabled());
  // With the audit armed (paranoid builds), a healthy overlay must sail
  // through; in regular builds this just runs the events.
  for (int i = 0; i < 8; ++i) {
    sim.schedule_in(static_cast<double>(i), [] {});
  }
  sim.run_all();
  EXPECT_EQ(sim.executed_events(), 8u);
}

// ------------------------------------------------------ fault-era rules

TEST(LintRules, PartitionClosureAcceptsStableWindow) {
  SnapshotGraph now = triangle();
  SnapshotGraph before = triangle();
  PartitionView view;
  view.slot_domain = {1, 1, 0};
  view.baseline_slot_domain = {1, 1, 0};
  view.baseline_graph = &before;
  view.live_domains = {1};
  const LintContext ctx{.graph = &now, .partition = &view};
  EXPECT_TRUE(run_rule("partition-closure", ctx).passed());
}

TEST(LintRules, PartitionClosureFlagsSideFlip) {
  SnapshotGraph now = triangle();
  PartitionView view;
  view.slot_domain = {1, 0, 0};  // slot 1 left domain 1 mid-window
  view.baseline_slot_domain = {1, 1, 0};
  view.live_domains = {1};
  const LintContext ctx{.graph = &now, .partition = &view};
  const LintReport report = run_rule("partition-closure", ctx);
  EXPECT_FALSE(report.passed());
  EXPECT_NE(report.to_string().find("moved out of"), std::string::npos);
}

TEST(LintRules, PartitionClosureFlagsGrowingCut) {
  // Baseline: one crossing edge (0-2); now: 1-2 appeared as well.
  SnapshotGraph before;
  before.node_count = 3;
  before.edges = {{0, 1}, {0, 2}};
  SnapshotGraph now;
  now.node_count = 3;
  now.edges = {{0, 1}, {0, 2}, {1, 2}};
  PartitionView view;
  view.slot_domain = {1, 1, 0};
  view.baseline_slot_domain = {1, 1, 0};
  view.baseline_graph = &before;
  view.live_domains = {1};
  const LintContext ctx{.graph = &now, .partition = &view};
  const LintReport report = run_rule("partition-closure", ctx);
  EXPECT_FALSE(report.passed());
  EXPECT_NE(report.to_string().find("grew from 1 to 2"),
            std::string::npos);
}

TEST(LintRules, PartitionClosureSkipsUnboundSlots) {
  SnapshotGraph now = triangle();
  PartitionView view;
  view.slot_domain = {1, PartitionView::kUnbound, 0};
  view.baseline_slot_domain = {1, 1, 0};
  view.live_domains = {1};
  const LintContext ctx{.graph = &now, .partition = &view};
  EXPECT_TRUE(run_rule("partition-closure", ctx).passed());
}

TEST(LintRules, SlotDomainsOfTracksPlacement) {
  Placement placement(3, 4);
  placement.bind(0, 2);
  placement.bind(2, 0);
  const std::vector<std::uint32_t> host_domain = {7, 0, 9, 0};
  const auto domains = slot_domains_of(placement, host_domain);
  ASSERT_EQ(domains.size(), 3u);
  EXPECT_EQ(domains[0], 9u);
  EXPECT_EQ(domains[1], PartitionView::kUnbound);
  EXPECT_EQ(domains[2], 7u);
}

TEST(LintRules, NegotiationLocksAcceptHealthyPair) {
  NegotiationLockView view;
  view.peer = {1, 0, kInvalidSlot};
  view.active = {true, true, true};
  view.has_pending = {true, false, false};  // initiator owns the release
  const LintContext ctx{.locks = &view};
  EXPECT_TRUE(run_rule("negotiation-locks", ctx).passed());
}

TEST(LintRules, NegotiationLocksFlagViolations) {
  NegotiationLockView view;
  view.peer = {0, 2, kInvalidSlot, 4, 3};
  view.active = {true, true, true, false, true};
  view.has_pending = {false, false, false, true, false};
  const LintContext ctx{.locks = &view};
  const LintReport report = run_rule("negotiation-locks", ctx);
  EXPECT_FALSE(report.passed());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("locked with itself"), std::string::npos);
  EXPECT_NE(text.find("asymmetric"), std::string::npos);
  EXPECT_NE(text.find("inactive slot 3"), std::string::npos);
}

TEST(LintRules, NegotiationLocksFlagOrphanedPair) {
  NegotiationLockView view;
  view.peer = {1, 0};
  view.active = {true, true};
  view.has_pending = {false, false};  // nobody owns a release event
  const LintContext ctx{.locks = &view};
  const LintReport report = run_rule("negotiation-locks", ctx);
  EXPECT_FALSE(report.passed());
  EXPECT_NE(report.to_string().find("never be released"),
            std::string::npos);
}

TEST(LintRules, NegotiationLockViewMirrorsEngine) {
  auto fx = testing::UnstructuredFixture::make(20, 4);
  Simulator sim;
  PropEngine prop(fx.net, sim, PropParams{}, /*seed=*/4);
  const NegotiationLockView view =
      negotiation_lock_view(prop, fx.net.graph());
  ASSERT_GE(view.peer.size(), fx.net.graph().slot_count());
  for (const SlotId p : view.peer) {
    EXPECT_EQ(p, kInvalidSlot);  // idle engine holds no locks
  }
  const LintContext ctx{.locks = &view};
  EXPECT_TRUE(run_rule("negotiation-locks", ctx).passed());
}

}  // namespace
}  // namespace propsim
