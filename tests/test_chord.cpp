#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "chord/chord_ring.h"
#include "chord/id_space.h"
#include "common/rng.h"
#include "topology/random_graphs.h"

namespace propsim {
namespace {

// ----------------------------------------------------------- IdSpace ----

TEST(IdSpace, IntervalOpenClosed) {
  EXPECT_TRUE(in_interval_oc(1, 5, 3));
  EXPECT_TRUE(in_interval_oc(1, 5, 5));
  EXPECT_FALSE(in_interval_oc(1, 5, 1));
  EXPECT_FALSE(in_interval_oc(1, 5, 7));
  // Wrapping interval.
  EXPECT_TRUE(in_interval_oc(5, 1, 7));
  EXPECT_TRUE(in_interval_oc(5, 1, 0));
  EXPECT_TRUE(in_interval_oc(5, 1, 1));
  EXPECT_FALSE(in_interval_oc(5, 1, 3));
  // Degenerate (full ring).
  EXPECT_TRUE(in_interval_oc(4, 4, 0));
  EXPECT_TRUE(in_interval_oc(4, 4, 4));
}

TEST(IdSpace, IntervalOpenOpen) {
  EXPECT_TRUE(in_interval_oo(1, 5, 3));
  EXPECT_FALSE(in_interval_oo(1, 5, 5));
  EXPECT_FALSE(in_interval_oo(1, 5, 1));
  EXPECT_TRUE(in_interval_oo(5, 1, 0));
  EXPECT_FALSE(in_interval_oo(5, 1, 1));
  EXPECT_TRUE(in_interval_oo(4, 4, 9));
  EXPECT_FALSE(in_interval_oo(4, 4, 4));
}

TEST(IdSpace, ClockwiseDistanceWraps) {
  EXPECT_EQ(clockwise_distance(10, 15), 5u);
  EXPECT_EQ(clockwise_distance(15, 10), ~std::uint64_t{0} - 4);
}

// ----------------------------------------------------------- ChordRing ----

class ChordRingTest : public ::testing::Test {
 protected:
  static ChordRing make_ring(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    ChordConfig cfg;
    return ChordRing::build_random(n, cfg, rng);
  }
};

TEST_F(ChordRingTest, IdsAreDistinct) {
  const auto ring = make_ring(100, 1);
  std::set<ChordId> ids;
  for (SlotId s = 0; s < 100; ++s) ids.insert(ring.id_of(s));
  EXPECT_EQ(ids.size(), 100u);
}

TEST_F(ChordRingTest, SuccessorOfMatchesBruteForce) {
  const auto ring = make_ring(64, 2);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const ChordId key = rng.next();
    // Brute force: slot with minimal clockwise distance from key.
    SlotId best = 0;
    ChordId best_dist = clockwise_distance(key, ring.id_of(0));
    for (SlotId s = 1; s < 64; ++s) {
      const ChordId d = clockwise_distance(key, ring.id_of(s));
      if (d < best_dist) {
        best = s;
        best_dist = d;
      }
    }
    EXPECT_EQ(ring.successor_of(key), best);
  }
}

TEST_F(ChordRingTest, OwnIdOwnedBySelf) {
  const auto ring = make_ring(32, 4);
  for (SlotId s = 0; s < 32; ++s) {
    EXPECT_EQ(ring.successor_of(ring.id_of(s)), s);
  }
}

TEST_F(ChordRingTest, RingSuccessorPredecessorInverse) {
  const auto ring = make_ring(40, 5);
  for (SlotId s = 0; s < 40; ++s) {
    EXPECT_EQ(ring.ring_predecessor(ring.ring_successor(s)), s);
    EXPECT_EQ(ring.ring_successor(s, 40), s);  // full loop
  }
}

TEST_F(ChordRingTest, SuccessorListsFollowRingOrder) {
  const auto ring = make_ring(20, 6);
  for (SlotId s = 0; s < 20; ++s) {
    const auto succ = ring.successors(s);
    ASSERT_EQ(succ.size(), ring.config().successor_list);
    for (std::size_t k = 0; k < succ.size(); ++k) {
      EXPECT_EQ(succ[k], ring.ring_successor(s, k + 1));
    }
  }
}

TEST_F(ChordRingTest, LookupTerminatesAtOwner) {
  const auto ring = make_ring(128, 7);
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    const SlotId src = static_cast<SlotId>(rng.uniform(128));
    const ChordId key = rng.next();
    const auto path = ring.lookup_path(src, key);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), ring.successor_of(key));
  }
}

TEST_F(ChordRingTest, LookupHopsAreLogarithmic) {
  const auto ring = make_ring(256, 9);
  Rng rng(10);
  double total_hops = 0.0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const SlotId src = static_cast<SlotId>(rng.uniform(256));
    const auto path = ring.lookup_path(src, rng.next());
    total_hops += static_cast<double>(path.size() - 1);
    EXPECT_LE(path.size() - 1, 20u);  // well under the guard, > log2(256)
  }
  EXPECT_LE(total_hops / trials, 10.0);  // ~0.5 * log2(n) expected
}

TEST_F(ChordRingTest, LookupPathMakesClockwiseProgress) {
  const auto ring = make_ring(64, 11);
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const SlotId src = static_cast<SlotId>(rng.uniform(64));
    const ChordId key = rng.next();
    const auto path = ring.lookup_path(src, key);
    // Intermediate hops strictly approach the key clockwise; the final
    // hop lands on the owner, which sits at-or-past the key, so it is
    // excluded from the monotonicity check.
    for (std::size_t h = 1; h + 1 < path.size(); ++h) {
      EXPECT_LE(clockwise_distance(ring.id_of(path[h]), key),
                clockwise_distance(ring.id_of(path[h - 1]), key));
    }
  }
}

TEST_F(ChordRingTest, BuildWithIdsPreservesIds) {
  const std::vector<ChordId> ids{100, 900, 42, 7000};
  const auto ring = ChordRing::build_with_ids(ids, ChordConfig{});
  for (SlotId s = 0; s < 4; ++s) EXPECT_EQ(ring.id_of(s), ids[s]);
  EXPECT_EQ(ring.successor_of(43), 0u);    // next id >= 43 is 100
  EXPECT_EQ(ring.successor_of(7001), 2u);  // wraps to smallest (42)
}

TEST_F(ChordRingTest, LogicalGraphConnectedAndSymmetric) {
  const auto ring = make_ring(100, 13);
  const LogicalGraph g = ring.to_logical_graph();
  EXPECT_TRUE(g.active_subgraph_connected());
  // Every slot at least links to its successor list.
  EXPECT_GE(g.min_active_degree(), ring.config().successor_list);
}

TEST_F(ChordRingTest, TinyRingsWork) {
  const auto ring = make_ring(2, 14);
  const auto path = ring.lookup_path(0, ring.id_of(1));
  EXPECT_EQ(path.back(), 1u);
  const LogicalGraph g = ring.to_logical_graph();
  EXPECT_TRUE(g.has_edge(0, 1));
}

// --------------------------------------------- overlay & path latency ----

TEST(ChordOverlay, MakeOverlayBindsHosts) {
  Rng rng(15);
  const Graph phys = make_connected_random_graph(50, 120, 2.0, rng);
  LatencyOracle oracle(phys);
  const auto ring = ChordRing::build_random(20, ChordConfig{}, rng);
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 20; ++h) hosts.push_back(h);
  const OverlayNetwork net = make_chord_overlay(ring, hosts, oracle);
  EXPECT_EQ(net.size(), 20u);
  EXPECT_TRUE(net.placement().validate());
  EXPECT_TRUE(net.graph().active_subgraph_connected());
}

TEST(ChordOverlay, PathLatencySumsHops) {
  Graph phys(4);
  phys.add_edge(0, 1, 5.0);
  phys.add_edge(1, 2, 7.0);
  phys.add_edge(2, 3, 1.0);
  LatencyOracle oracle(phys);
  LogicalGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Placement p(3, 4);
  p.bind(0, 0);
  p.bind(1, 1);
  p.bind(2, 2);
  OverlayNetwork net(std::move(g), std::move(p), oracle);
  const std::vector<SlotId> path{0, 1, 2};
  EXPECT_DOUBLE_EQ(path_latency(net, path), 12.0);
  const std::vector<double> proc{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(path_latency(net, path, &proc), 17.0);
  const std::vector<SlotId> self{1};
  EXPECT_DOUBLE_EQ(path_latency(net, self), 0.0);
}

// ------------------------------------------------------------- PNS ----

TEST(ChordPns, LookupStillCorrectAfterPns) {
  Rng rng(16);
  const Graph phys = make_connected_random_graph(80, 200, 3.0, rng);
  LatencyOracle oracle(phys);
  ChordConfig cfg;
  cfg.pns_candidates = 4;
  auto ring = ChordRing::build_random(64, cfg, rng);
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 64; ++h) hosts.push_back(h);
  ring.apply_pns(hosts, oracle);
  for (int i = 0; i < 200; ++i) {
    const SlotId src = static_cast<SlotId>(rng.uniform(64));
    const ChordId key = rng.next();
    const auto path = ring.lookup_path(src, key);
    EXPECT_EQ(path.back(), ring.successor_of(key));
    EXPECT_LE(path.size(), 40u);
  }
}

TEST(ChordPns, ReducesAverageFingerLatency) {
  Rng rng(17);
  const Graph phys = make_connected_random_graph(100, 240, 3.0, rng);
  LatencyOracle oracle(phys);
  ChordConfig plain_cfg;
  auto plain = ChordRing::build_random(80, plain_cfg, rng);
  ChordConfig pns_cfg;
  pns_cfg.pns_candidates = 8;
  auto pns = ChordRing::build_with_ids(
      [&] {
        std::vector<ChordId> ids;
        for (SlotId s = 0; s < 80; ++s) ids.push_back(plain.id_of(s));
        return ids;
      }(),
      pns_cfg);
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 80; ++h) hosts.push_back(h);
  pns.apply_pns(hosts, oracle);

  auto avg_finger_latency = [&](const ChordRing& r) {
    double sum = 0.0;
    std::size_t count = 0;
    for (SlotId s = 0; s < 80; ++s) {
      for (const SlotId f : r.fingers(s)) {
        sum += oracle.latency(hosts[s], hosts[f]);
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_LT(avg_finger_latency(pns), avg_finger_latency(plain));
}

}  // namespace
}  // namespace propsim
