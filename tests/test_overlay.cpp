#include <algorithm>
#include <limits>
#include <optional>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fixtures.h"
#include "overlay/graph_io.h"
#include "overlay/isomorphism.h"
#include "overlay/logical_graph.h"
#include "overlay/overlay_network.h"
#include "overlay/placement.h"
#include "topology/random_graphs.h"

namespace propsim {
namespace {

// ------------------------------------------------------- LogicalGraph ----

TEST(LogicalGraph, EdgesAndDegrees) {
  LogicalGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.degree(1), 2u);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(LogicalGraph, DeactivateRemovesIncidentEdges) {
  LogicalGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.deactivate_slot(0);
  EXPECT_FALSE(g.is_active(0));
  EXPECT_EQ(g.active_count(), 3u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(LogicalGraph, ReactivateStartsIsolated) {
  LogicalGraph g(3);
  g.add_edge(0, 1);
  g.deactivate_slot(1);
  g.reactivate_slot(1);
  EXPECT_TRUE(g.is_active(1));
  EXPECT_EQ(g.degree(1), 0u);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(LogicalGraph, ActiveConnectivityIgnoresInactive) {
  LogicalGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.active_subgraph_connected());
  g.deactivate_slot(3);
  EXPECT_TRUE(g.active_subgraph_connected());
  g.deactivate_slot(1);
  EXPECT_FALSE(g.active_subgraph_connected());  // 0 | 2 split
}

TEST(LogicalGraph, DegreeMultisetSorted) {
  LogicalGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto d = g.degree_multiset();
  EXPECT_EQ(d, (std::vector<std::size_t>{1, 1, 1, 3}));
}

TEST(LogicalGraph, MinAndAverageActiveDegree) {
  LogicalGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.min_active_degree(), 1u);
  EXPECT_NEAR(g.average_active_degree(), 4.0 / 3.0, 1e-12);
}

TEST(LogicalGraph, AddSlotGrows) {
  LogicalGraph g(2);
  const SlotId s = g.add_slot();
  EXPECT_EQ(s, 2u);
  EXPECT_EQ(g.active_count(), 3u);
  g.add_edge(0, s);
  EXPECT_TRUE(g.has_edge(s, 0));
}

// ---------------------------------------------------------- Placement ----

TEST(Placement, BindUnbindRoundTrip) {
  Placement p(3, 10);
  p.bind(0, 7);
  p.bind(2, 4);
  EXPECT_TRUE(p.slot_bound(0));
  EXPECT_FALSE(p.slot_bound(1));
  EXPECT_EQ(p.host_of(0), 7u);
  EXPECT_EQ(p.slot_of(7), 0u);
  EXPECT_EQ(p.bound_count(), 2u);
  EXPECT_TRUE(p.validate());
  p.unbind(0);
  EXPECT_FALSE(p.slot_bound(0));
  EXPECT_FALSE(p.host_bound(7));
  EXPECT_TRUE(p.validate());
}

TEST(Placement, SwapSlotsExchangesHosts) {
  Placement p(3, 10);
  p.bind(0, 5);
  p.bind(1, 6);
  p.swap_slots(0, 1);
  EXPECT_EQ(p.host_of(0), 6u);
  EXPECT_EQ(p.host_of(1), 5u);
  EXPECT_EQ(p.slot_of(5), 1u);
  EXPECT_EQ(p.slot_of(6), 0u);
  EXPECT_TRUE(p.validate());
}

TEST(Placement, BoundHostsOrderedBySlot) {
  Placement p(4, 10);
  p.bind(3, 2);
  p.bind(1, 9);
  EXPECT_EQ(p.bound_hosts(), (std::vector<NodeId>{9, 2}));
}

TEST(Placement, EnsureSlotCapacityGrows) {
  Placement p(1, 5);
  p.ensure_slot_capacity(3);
  p.bind(2, 0);
  EXPECT_EQ(p.host_of(2), 0u);
  EXPECT_TRUE(p.validate());
}

// ----------------------------------------------------- OverlayNetwork ----

class OverlayNetworkTest : public ::testing::Test {
 protected:
  OverlayNetworkTest() : physical_(make_ring()), oracle_(physical_) {}

  static Graph make_ring() {
    // 6-host physical ring with unit latency.
    Graph g(6);
    for (NodeId u = 0; u < 6; ++u) g.add_edge(u, (u + 1) % 6, 1.0);
    return g;
  }

  OverlayNetwork make_net() {
    LogicalGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 0);
    Placement p(4, 6);
    // Slot i -> host i (hosts 4, 5 unused).
    for (SlotId s = 0; s < 4; ++s) p.bind(s, s);
    return OverlayNetwork(std::move(g), std::move(p), oracle_);
  }

  Graph physical_;
  LatencyOracle oracle_;
};

TEST_F(OverlayNetworkTest, SlotLatencyUsesPhysicalShortestPath) {
  auto net = make_net();
  EXPECT_DOUBLE_EQ(net.slot_latency(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(net.slot_latency(0, 3), 3.0);  // ring distance
  EXPECT_DOUBLE_EQ(net.slot_latency(2, 2), 0.0);
}

TEST_F(OverlayNetworkTest, NeighborLatencySum) {
  auto net = make_net();
  // Slot 1 neighbors slots 0 and 2 -> hosts 0, 2 at distances 1 and 1.
  EXPECT_DOUBLE_EQ(net.neighbor_latency_sum(1), 2.0);
  // Slot 0 neighbors slots 1 and 3 -> distances 1 and 3.
  EXPECT_DOUBLE_EQ(net.neighbor_latency_sum(0), 4.0);
}

TEST_F(OverlayNetworkTest, AverageLogicalLinkLatency) {
  auto net = make_net();
  // Logical edges: (0,1)=1, (1,2)=1, (2,3)=1, (3,0)=3 -> mean 1.5.
  EXPECT_DOUBLE_EQ(net.average_logical_link_latency(), 1.5);
}

TEST_F(OverlayNetworkTest, RandomWalkRespectsTtlAndNoRevisit) {
  auto net = make_net();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto walk = net.random_walk(0, 1, 2, rng);
    ASSERT_TRUE(walk.has_value());
    EXPECT_EQ(walk->size(), 3u);
    EXPECT_EQ((*walk)[0], 0u);
    EXPECT_EQ((*walk)[1], 1u);
    std::set<SlotId> uniq(walk->begin(), walk->end());
    EXPECT_EQ(uniq.size(), walk->size());
  }
}

TEST_F(OverlayNetworkTest, RandomWalkDeadEndReturnsNullopt) {
  LogicalGraph g(3);
  g.add_edge(0, 1);  // 1 is a dead end beyond 0
  g.add_edge(0, 2);
  Placement p(3, 6);
  for (SlotId s = 0; s < 3; ++s) p.bind(s, s);
  OverlayNetwork net(std::move(g), std::move(p), oracle_);
  Rng rng(4);
  // Walk 0 -> 1 needs a second hop but 1's only neighbor is visited.
  EXPECT_FALSE(net.random_walk(0, 1, 2, rng).has_value());
}

TEST_F(OverlayNetworkTest, FloodLatenciesAreOverlayShortestPaths) {
  auto net = make_net();
  const auto d = net.flood_latencies(0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);  // via slot 1, latency 1+1
  EXPECT_DOUBLE_EQ(d[3], 3.0);  // via slots 1,2 (3 hops of 1) or direct 3
}

TEST_F(OverlayNetworkTest, FloodLatenciesWithProcessingDelay) {
  auto net = make_net();
  const std::vector<double> proc{0.0, 10.0, 0.0, 0.0};
  const auto d = net.flood_latencies(0, &proc);
  // 0->1 pays 1 + proc(1)=10; 0->2 via 1 pays 12, via 3: 3+0+1+0=4.
  EXPECT_DOUBLE_EQ(d[1], 11.0);
  EXPECT_DOUBLE_EQ(d[2], 4.0);
}

// The walk algorithm random_walk replaced: visited membership via
// std::find over the path, O(degree * ttl) per step. Kept verbatim as
// the behavioral reference — the epoch-stamped version must draw the
// exact same candidates in the exact same order.
std::optional<std::vector<SlotId>> reference_walk(const OverlayNetwork& net,
                                                  SlotId from,
                                                  SlotId first_hop,
                                                  std::size_t ttl, Rng& rng) {
  std::vector<SlotId> path{from, first_hop};
  path.reserve(ttl + 1);
  std::vector<SlotId> candidates;
  while (path.size() < ttl + 1) {
    const SlotId here = path.back();
    candidates.clear();
    for (const SlotId v : net.graph().neighbors(here)) {
      if (std::find(path.begin(), path.end(), v) == path.end()) {
        candidates.push_back(v);
      }
    }
    if (candidates.empty()) return std::nullopt;
    const SlotId chosen = rng.pick(candidates);
    path.push_back(chosen);
  }
  return path;
}

TEST(RandomWalkRegression, LongTtlMatchesFindBasedReference) {
  auto fx = testing::UnstructuredFixture::make(60, 6001, 4);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const SlotId from = static_cast<SlotId>(seed % 60);
    const auto nbrs = fx.net.graph().neighbors(from);
    ASSERT_FALSE(nbrs.empty());
    const SlotId first_hop = nbrs.front();
    for (const std::size_t ttl : {2, 8, 40}) {
      // Separate generators with the same seed: identical candidate
      // sequences must consume identical draws.
      Rng walk_rng(seed);
      Rng ref_rng(seed);
      const auto got = fx.net.random_walk(from, first_hop, ttl, walk_rng);
      const auto want = reference_walk(fx.net, from, first_hop, ttl, ref_rng);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "seed " << seed << " ttl " << ttl;
      if (got.has_value()) {
        EXPECT_EQ(*got, *want) << "seed " << seed << " ttl " << ttl;
      }
    }
  }
}

TEST(FloodScratch, ReuseMatchesAllocatingAcrossSources) {
  auto fx = testing::UnstructuredFixture::make(50, 6002);
  OverlayNetwork::FloodScratch scratch;  // one buffer for every call
  std::vector<double> proc(fx.net.graph().slot_count(), 0.0);
  for (std::size_t s = 0; s < proc.size(); s += 4) proc[s] = 5.0;
  const OverlayNetwork::LinkFilter drop = [](SlotId a, SlotId b) {
    return a % 7 != 0 && b % 7 != 0;
  };
  for (const SlotId src : {SlotId{1}, SlotId{7}, SlotId{23}, SlotId{44}}) {
    EXPECT_EQ(fx.net.flood_latencies(src, &proc),
              fx.net.flood_latencies_into(scratch, src, &proc));
    EXPECT_EQ(fx.net.flood_latencies(src, nullptr, &drop),
              fx.net.flood_latencies_into(scratch, src, nullptr, &drop));
    EXPECT_EQ(fx.net.hop_distances(src, 4),
              fx.net.hop_distances_into(scratch, src, 4));
  }
}

TEST_F(OverlayNetworkTest, HopDistancesBfs) {
  auto net = make_net();
  const auto h = net.hop_distances(0, 10);
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[3], 1u);
  EXPECT_EQ(h[2], 2u);
  const auto capped = net.hop_distances(0, 1);
  EXPECT_EQ(capped[2], std::numeric_limits<std::uint32_t>::max());
}

// ------------------------------------------------------------ GraphIo ----

TEST(GraphIo, EdgeListRoundTrip) {
  Rng rng(21);
  const Graph g = make_connected_random_graph(30, 70, 2.5, rng);
  const Graph back = graph_from_edge_list(graph_to_edge_list(g));
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Graph::Edge& e : g.neighbors(u)) {
      ASSERT_TRUE(back.has_edge(u, e.to));
      EXPECT_DOUBLE_EQ(back.edge_weight(u, e.to), e.weight);
    }
  }
}

TEST(GraphIo, EdgeListParsesCommentsAndBlankLines) {
  const Graph g = graph_from_edge_list(
      "# header\n\nnodes 3\n0 1 2.5  # inline\n\n1 2 7\n");
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.5);
}

TEST(GraphIo, SaveLoadFile) {
  Rng rng(22);
  const Graph g = make_connected_random_graph(12, 25, 1.0, rng);
  const std::string path = ::testing::TempDir() + "propsim_graph_io.txt";
  save_graph(g, path);
  const Graph back = load_graph(path);
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_TRUE(back.is_connected());
}

TEST(GraphIo, DotExportContainsEdges) {
  Graph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 7.0);
  const std::string dot = graph_to_dot(g, /*label_weights=*/true);
  EXPECT_NE(dot.find("graph physical {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"7\""), std::string::npos);
}

TEST(GraphIo, OverlayDotColorsByLatency) {
  Graph phys(4);
  phys.add_edge(0, 1, 1.0);
  phys.add_edge(1, 2, 1.0);
  phys.add_edge(2, 3, 1.0);
  LatencyOracle oracle(phys);
  LogicalGraph g(3);
  g.add_edge(0, 1);  // short link (1 ms)
  g.add_edge(0, 2);  // long link (3 ms via hosts 0 and 3)
  Placement p(3, 4);
  p.bind(0, 0);
  p.bind(1, 1);
  p.bind(2, 3);
  OverlayNetwork net(std::move(g), std::move(p), oracle);
  const std::string dot = overlay_to_dot(net);
  EXPECT_NE(dot.find("s0 -- s1 [color=\"0.330"), std::string::npos);  // green
  EXPECT_NE(dot.find("s0 -- s2 [color=\"0.000"), std::string::npos);  // red
  EXPECT_NE(dot.find("\"0/0\""), std::string::npos);  // slot/host label
}

// -------------------------------------------------------- Isomorphism ----

TEST(Isomorphism, HostEdgesCanonical) {
  LogicalGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Placement p(3, 5);
  p.bind(0, 4);
  p.bind(1, 0);
  p.bind(2, 2);
  const auto edges = host_edges(g, p);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (HostEdge{0, 2}));
  EXPECT_EQ(edges[1], (HostEdge{0, 4}));
}

TEST(Isomorphism, SwapYieldsIsomorphicHostGraph) {
  LogicalGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Placement before(4, 8);
  for (SlotId s = 0; s < 4; ++s) before.bind(s, s);
  Placement after = before;
  after.swap_slots(1, 3);
  const auto [hosts, phi] = placement_bijection(before, after);
  EXPECT_TRUE(isomorphic_via(host_edges(g, before), host_edges(g, after),
                             hosts, phi));
}

TEST(Isomorphism, DetectsNonIsomorphicEdit) {
  LogicalGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  LogicalGraph h = g;
  h.remove_edge(1, 2);
  h.add_edge(0, 2);  // degree sequence changes at slot 1
  Placement p(4, 8);
  for (SlotId s = 0; s < 4; ++s) p.bind(s, s);
  const auto [hosts, phi] = placement_bijection(p, p);
  EXPECT_FALSE(isomorphic_via(host_edges(g, p), host_edges(h, p), hosts, phi));
}

TEST(Isomorphism, IdentityMappingOnUnchangedGraph) {
  Rng rng(5);
  LogicalGraph g(10);
  for (int i = 0; i < 15; ++i) {
    const SlotId a = static_cast<SlotId>(rng.uniform(10));
    SlotId b = static_cast<SlotId>(rng.uniform(9));
    if (b >= a) ++b;
    if (!g.has_edge(a, b)) g.add_edge(a, b);
  }
  Placement p(10, 20);
  for (SlotId s = 0; s < 10; ++s) p.bind(s, s + 5);
  const auto [hosts, phi] = placement_bijection(p, p);
  EXPECT_TRUE(isomorphic_via(host_edges(g, p), host_edges(g, p), hosts, phi));
}

}  // namespace
}  // namespace propsim
