#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/json.h"
#include "obs/bench_compare.h"

namespace propsim {
namespace {

using obs::CompareOptions;
using obs::CompareReport;
using obs::MetricDirection;

Json doc(const std::string& schema, double wall_ms, double qps,
         double final_metric) {
  Json out = Json::object();
  out.set("schema", schema).set("version", 1);
  Json bench = Json::object();
  bench.set("wall_ms", wall_ms).set("qps", qps);
  out.set("bench", std::move(bench));
  Json metric = Json::object();
  metric.set("final", final_metric);
  out.set("metric", std::move(metric));
  return out;
}

TEST(MetricDirection, InferredFromNameTokens) {
  EXPECT_EQ(obs::metric_direction("scales.0.wall_ms"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(obs::metric_direction("peak_rss_mb"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(obs::metric_direction("oracle.qps"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(obs::metric_direction("metric.final"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(obs::metric_direction("spec.nodes"),
            MetricDirection::kInformational);
  EXPECT_EQ(obs::metric_direction("spec.seed"),
            MetricDirection::kInformational);
}

TEST(FlattenNumeric, WalksObjectsAndArrays) {
  std::string error;
  const auto parsed = Json::parse(
      R"({"a": {"b": 2.5}, "list": [1, {"x": 3}], "s": "str", "f": false})",
      &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  std::map<std::string, double> flat;
  obs::flatten_numeric(*parsed, "", flat);
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_DOUBLE_EQ(flat.at("a.b"), 2.5);
  EXPECT_DOUBLE_EQ(flat.at("list.0"), 1.0);
  EXPECT_DOUBLE_EQ(flat.at("list.1.x"), 3.0);
}

TEST(CompareMetrics, IdenticalDocumentsPass) {
  const Json base = doc("propsim.bench.oracle", 100.0, 5000.0, 2.0);
  const CompareReport r = obs::compare_metrics(base, base, CompareOptions{});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.regressions(), 0u);
  EXPECT_FALSE(r.deltas.empty());
}

TEST(CompareMetrics, WorseningPastToleranceIsARegression) {
  const Json base = doc("propsim.bench.oracle", 100.0, 5000.0, 2.0);
  // wall_ms +50% (worse), qps unchanged, metric unchanged.
  const Json cand = doc("propsim.bench.oracle", 150.0, 5000.0, 2.0);
  CompareOptions opt;
  opt.tolerance_pct = 25.0;
  const CompareReport r = obs::compare_metrics(base, cand, opt);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions(), 1u);
  for (const auto& d : r.deltas) {
    if (!d.regression) continue;
    EXPECT_EQ(d.path, "bench.wall_ms");
    EXPECT_NEAR(d.worsening_pct, 50.0, 1e-9);
  }
  // A generous threshold lets the same pair pass.
  opt.tolerance_pct = 90.0;
  EXPECT_TRUE(obs::compare_metrics(base, cand, opt).ok());
}

TEST(CompareMetrics, DirectionAwareness) {
  const Json base = doc("propsim.bench.oracle", 100.0, 5000.0, 2.0);
  // qps halved = worse for a higher-is-better metric; wall_ms halved =
  // improvement for a lower-is-better one.
  const Json cand = doc("propsim.bench.oracle", 50.0, 2500.0, 2.0);
  CompareOptions opt;
  opt.tolerance_pct = 25.0;
  const CompareReport r = obs::compare_metrics(base, cand, opt);
  ASSERT_EQ(r.regressions(), 1u);
  for (const auto& d : r.deltas) {
    if (d.path == "bench.qps") {
      EXPECT_TRUE(d.regression);
    }
    if (d.path == "bench.wall_ms") {
      EXPECT_FALSE(d.regression);
      EXPECT_LT(d.worsening_pct, 0.0);  // improved
    }
  }
}

TEST(CompareMetrics, PerMetricOverrideWins) {
  const Json base = doc("propsim.bench.oracle", 100.0, 5000.0, 2.0);
  const Json cand = doc("propsim.bench.oracle", 150.0, 5000.0, 2.0);
  CompareOptions opt;
  opt.tolerance_pct = 25.0;
  opt.per_metric.emplace_back("wall_ms", 75.0);
  EXPECT_TRUE(obs::compare_metrics(base, cand, opt).ok());
  // Negative tolerance demotes the metric to informational.
  opt.per_metric.clear();
  opt.per_metric.emplace_back("wall_ms", -1.0);
  const CompareReport r = obs::compare_metrics(base, cand, opt);
  EXPECT_TRUE(r.ok());
  for (const auto& d : r.deltas) {
    if (d.path == "bench.wall_ms") {
      EXPECT_EQ(d.direction, MetricDirection::kInformational);
    }
  }
}

TEST(CompareMetrics, SchemaMismatchIsAnErrorUnlessAllowed) {
  const Json base = doc("propsim.bench.oracle", 100.0, 5000.0, 2.0);
  const Json cand = doc("propsim.result", 100.0, 5000.0, 2.0);
  CompareOptions opt;
  EXPECT_FALSE(obs::compare_metrics(base, cand, opt).ok());
  opt.require_same_schema = false;
  EXPECT_TRUE(obs::compare_metrics(base, cand, opt).ok());
}

TEST(CompareMetrics, ZeroBaselineGrowthIsARegression) {
  std::string error;
  const auto base =
      Json::parse(R"({"schema":"x","version":1,"wall_ms":0})", &error);
  const auto cand =
      Json::parse(R"({"schema":"x","version":1,"wall_ms":10})", &error);
  ASSERT_TRUE(base && cand);
  const CompareReport r =
      obs::compare_metrics(*base, *cand, CompareOptions{});
  EXPECT_EQ(r.regressions(), 1u);
}

TEST(CompareMetrics, MissingMetricsAreNotedNotFatal) {
  std::string error;
  const auto base = Json::parse(
      R"({"schema":"x","version":1,"wall_ms":5,"extra":7})", &error);
  const auto cand =
      Json::parse(R"({"schema":"x","version":1,"wall_ms":5})", &error);
  ASSERT_TRUE(base && cand);
  const CompareReport r =
      obs::compare_metrics(*base, *cand, CompareOptions{});
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.notes.empty());
}

TEST(CompareMetrics, RequireMetricPresentInBothPasses) {
  const Json base = doc("propsim.bench.oracle", 100.0, 5000.0, 2.0);
  CompareOptions opt;
  opt.require_metrics = {"qps", "wall_ms"};
  const CompareReport r = obs::compare_metrics(base, base, opt);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.required_failures.empty());
}

TEST(CompareMetrics, RequireMetricAbsentFromCandidateFails) {
  const Json base = doc("propsim.bench.oracle", 100.0, 5000.0, 2.0);
  CompareOptions opt;
  opt.require_metrics = {"hardware.cores"};
  const CompareReport r = obs::compare_metrics(base, base, opt);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.required_failures.size(), 1u);
  EXPECT_NE(r.required_failures[0].find("hardware.cores"),
            std::string::npos);
  // A required-metric failure is a gate failure, not an invocation
  // error — the CLI maps it to exit 1, not 2.
  EXPECT_TRUE(r.errors.empty());
}

TEST(CompareMetrics, RequireMetricCandidateOnlyWarnsUnlessStrict) {
  const Json base = doc("propsim.bench.oracle", 100.0, 5000.0, 2.0);
  Json cand = doc("propsim.bench.oracle", 100.0, 5000.0, 2.0);
  Json hw = Json::object();
  hw.set("cores", static_cast<std::uint64_t>(4));
  cand.set("hardware", std::move(hw));

  CompareOptions opt;
  opt.require_metrics = {"hardware.cores"};
  const CompareReport lax = obs::compare_metrics(base, cand, opt);
  EXPECT_TRUE(lax.ok());
  EXPECT_TRUE(lax.required_failures.empty());
  bool noted = false;
  for (const std::string& n : lax.notes) {
    noted = noted || n.find("hardware.cores") != std::string::npos;
  }
  EXPECT_TRUE(noted);

  opt.strict_baseline = true;
  const CompareReport strict = obs::compare_metrics(base, cand, opt);
  EXPECT_FALSE(strict.ok());
  ASSERT_EQ(strict.required_failures.size(), 1u);
  EXPECT_NE(strict.required_failures[0].find("regenerate"),
            std::string::npos);
}

}  // namespace
}  // namespace propsim
