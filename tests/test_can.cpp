#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "can/can_space.h"
#include "common/rng.h"
#include "topology/random_graphs.h"

namespace propsim {
namespace {

TEST(CanZone, ContainsAndCenter) {
  CanZone z;
  z.lo = {0, 0};
  z.hi = {100, 200};
  EXPECT_TRUE(z.contains({0, 0}));
  EXPECT_TRUE(z.contains({99, 199}));
  EXPECT_FALSE(z.contains({100, 0}));
  EXPECT_EQ(z.center()[0], 50u);
  EXPECT_EQ(z.center()[1], 100u);
  EXPECT_EQ(z.extent(0), 100u);
}

TEST(CanZone, VolumeFraction) {
  CanZone z;
  z.lo = {0, 0};
  z.hi = {kCanSpan / 2, kCanSpan / 4};
  EXPECT_NEAR(z.volume_fraction(), 0.125, 1e-12);
}

TEST(CanGeometry, TorusDistanceWraps) {
  const CanPoint a{1, 1};
  const CanPoint b{kCanSpan - 1, 1};
  EXPECT_DOUBLE_EQ(torus_distance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(torus_distance(a, a), 0.0);
}

TEST(CanGeometry, AdjacencyBasic) {
  CanZone a;
  a.lo = {0, 0};
  a.hi = {100, 100};
  CanZone b;
  b.lo = {100, 0};
  b.hi = {200, 100};
  EXPECT_TRUE(zones_adjacent(a, b));
  EXPECT_TRUE(zones_adjacent(b, a));
  // Corner-touching only: not adjacent.
  CanZone c;
  c.lo = {100, 100};
  c.hi = {200, 200};
  EXPECT_FALSE(zones_adjacent(a, c));
  // Disjoint: not adjacent.
  CanZone d;
  d.lo = {500, 500};
  d.hi = {600, 600};
  EXPECT_FALSE(zones_adjacent(a, d));
}

TEST(CanGeometry, AdjacencyAcrossSeam) {
  CanZone a;
  a.lo = {kCanSpan - 100, 0};
  a.hi = {kCanSpan, kCanSpan};
  CanZone b;
  b.lo = {0, 0};
  b.hi = {100, kCanSpan};
  EXPECT_TRUE(zones_adjacent(a, b));
}

TEST(CanSpaceBuild, TilesAndValidates) {
  Rng rng(1);
  const auto space = CanSpace::build(40, rng);
  EXPECT_EQ(space.size(), 40u);
  EXPECT_TRUE(space.validate());
}

TEST(CanSpaceBuild, OwnerIsUnique) {
  Rng rng(2);
  const auto space = CanSpace::build(25, rng);
  Rng probe(3);
  for (int i = 0; i < 200; ++i) {
    CanPoint p{probe.uniform(kCanSpan), probe.uniform(kCanSpan)};
    const SlotId owner = space.owner_of(p);
    std::size_t containing = 0;
    for (SlotId s = 0; s < space.size(); ++s) {
      if (space.zone(s).contains(p)) ++containing;
    }
    EXPECT_EQ(containing, 1u);
    EXPECT_TRUE(space.zone(owner).contains(p));
  }
}

TEST(CanSpaceBuild, NeighborListsSymmetric) {
  Rng rng(4);
  const auto space = CanSpace::build(30, rng);
  for (SlotId a = 0; a < space.size(); ++a) {
    for (const SlotId b : space.neighbors(a)) {
      const auto nb = space.neighbors(b);
      EXPECT_NE(std::find(nb.begin(), nb.end(), a), nb.end());
    }
  }
}

TEST(CanRouting, ReachesOwner) {
  Rng rng(5);
  const auto space = CanSpace::build(60, rng);
  Rng probe(6);
  for (int i = 0; i < 200; ++i) {
    const SlotId src = static_cast<SlotId>(probe.uniform(space.size()));
    CanPoint target{probe.uniform(kCanSpan), probe.uniform(kCanSpan)};
    const auto path = space.route_path(src, target);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), space.owner_of(target));
    // Greedy on zone distance must not revisit zones.
    std::set<SlotId> uniq(path.begin(), path.end());
    EXPECT_EQ(uniq.size(), path.size());
  }
}

TEST(CanRouting, PathLengthScalesAsSqrt) {
  // O(sqrt(n)) expected hops in 2-d CAN: check a generous cap.
  Rng rng(7);
  const auto space = CanSpace::build(100, rng);
  Rng probe(8);
  double total = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const SlotId src = static_cast<SlotId>(probe.uniform(space.size()));
    CanPoint target{probe.uniform(kCanSpan), probe.uniform(kCanSpan)};
    total += static_cast<double>(space.route_path(src, target).size() - 1);
  }
  EXPECT_LE(total / trials, 15.0);
}

TEST(CanLogicalGraph, ConnectedMatchesNeighbors) {
  Rng rng(9);
  const auto space = CanSpace::build(50, rng);
  const LogicalGraph g = space.to_logical_graph();
  EXPECT_TRUE(g.active_subgraph_connected());
  for (SlotId s = 0; s < space.size(); ++s) {
    EXPECT_EQ(g.degree(s), space.neighbors(s).size());
  }
}

TEST(CanOverlay, BindsHostsAndRoutes) {
  Rng rng(10);
  const Graph phys = make_connected_random_graph(60, 140, 2.0, rng);
  LatencyOracle oracle(phys);
  const auto space = CanSpace::build(30, rng);
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 30; ++h) hosts.push_back(h);
  const OverlayNetwork net = make_can_overlay(space, hosts, oracle);
  EXPECT_EQ(net.size(), 30u);
  EXPECT_TRUE(net.placement().validate());
  // Routed path latency is finite and consistent with slot latencies.
  const auto path = space.route_path(0, CanPoint{kCanSpan / 3, kCanSpan / 2});
  double manual = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    manual += net.slot_latency(path[i - 1], path[i]);
  }
  EXPECT_GE(manual, 0.0);
}

TEST(CanSpaceBuild, DeterministicForSeed) {
  Rng r1(11);
  Rng r2(11);
  const auto a = CanSpace::build(20, r1);
  const auto b = CanSpace::build(20, r2);
  for (SlotId s = 0; s < 20; ++s) {
    EXPECT_EQ(a.zone(s).lo, b.zone(s).lo);
    EXPECT_EQ(a.zone(s).hi, b.zone(s).hi);
  }
}

}  // namespace
}  // namespace propsim
