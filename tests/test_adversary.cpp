#include <array>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/adversary.h"
#include "analysis/invariant_checker.h"
#include "analysis/lint_rules.h"
#include "app/experiment.h"
#include "app/result_json.h"
#include "common/config.h"
#include "core/prop_engine.h"
#include "faults/fault_plan.h"
#include "fixtures.h"
#include "sim/simulator.h"
#include "workload/churn.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

PropParams adversary_test_params(PropMode mode) {
  PropParams p;
  p.mode = mode;
  p.nhops = 2;
  p.init_timer_s = 10.0;
  p.max_init_trial = 5;
  p.model_message_delays = true;
  return p;
}

// ------------------------------------------------------ AdversaryLayer --

TEST(AdversaryLayer, RoleAssignmentIsDeterministicAndDisjoint) {
  auto fx = UnstructuredFixture::make(40, 9500);
  AdversaryParams params;
  params.liar_fraction = 0.2;
  params.freeride_fraction = 0.1;
  params.dropper_fraction = 0.05;
  AdversaryLayer a(fx.net, params, 42);
  AdversaryLayer b(fx.net, params, 42);
  for (NodeId h = 0; h < 2000; ++h) {
    EXPECT_EQ(a.role_of_host(h), b.role_of_host(h));
  }
  // Cohort sizes approximate the configured fractions (hash-based
  // assignment over 4000 hosts).
  const std::array<std::uint64_t, 5> counts = a.census(4000);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 4000.0, 0.2, 0.05);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 4000.0, 0.1, 0.05);
  EXPECT_NEAR(static_cast<double>(counts[3]) / 4000.0, 0.05, 0.03);
  EXPECT_EQ(counts[4], 0u);  // no eclipse cohort configured
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3] + counts[4],
            4000u);
}

TEST(AdversaryLayer, DefaultParamsAreInactive) {
  AdversaryParams params;
  EXPECT_FALSE(params.active());
  params.liar_fraction = 0.01;
  EXPECT_TRUE(params.active());
}

// ------------------------------------------------- per-model behavior --

TEST(AdversaryModels, LiarsFlipGateDecisionsButPreserveStructure) {
  auto fx = UnstructuredFixture::make(60, 9510);
  const auto degrees = fx.net.graph().degree_multiset();
  Simulator sim;
  PropEngine engine(fx.net, sim, adversary_test_params(PropMode::kPropO),
                    60);
  AdversaryParams params;
  params.liar_fraction = 0.3;
  AdversaryLayer adversary(fx.net, params, 61);
  engine.set_adversary(&adversary);
  engine.start();
  sim.run_until(3000.0);
  EXPECT_GT(adversary.stats().lies, 0u);
  EXPECT_GT(engine.stats().exchanges, 0u);
  // Lies corrupt decisions, never applied plans: the degree multiset
  // (Theorem 1) and the placement bijection survive any lie.
  EXPECT_EQ(fx.net.graph().degree_multiset(), degrees);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
  EXPECT_TRUE(fx.net.placement().validate());
}

TEST(AdversaryModels, FreeRidersSkipProbesButHonestMajorityConverges) {
  auto fx = UnstructuredFixture::make(60, 9511);
  const double before = fx.net.average_logical_link_latency();
  Simulator sim;
  PropEngine engine(fx.net, sim, adversary_test_params(PropMode::kPropO),
                    62);
  AdversaryParams params;
  params.freeride_fraction = 0.3;
  AdversaryLayer adversary(fx.net, params, 63);
  engine.set_adversary(&adversary);
  engine.start();
  sim.run_until(3000.0);
  EXPECT_GT(adversary.stats().freeride_skips, 0u);
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_LT(fx.net.average_logical_link_latency(), before);
}

TEST(AdversaryModels, DroppersAbortPreparedCommits) {
  auto fx = UnstructuredFixture::make(60, 9512);
  Simulator sim;
  PropEngine engine(fx.net, sim, adversary_test_params(PropMode::kPropG),
                    64);
  AdversaryParams params;
  params.dropper_fraction = 0.3;
  params.drop_probability = 1.0;
  AdversaryLayer adversary(fx.net, params, 65);
  engine.set_adversary(&adversary);
  engine.start();
  sim.run_until(3000.0);
  EXPECT_GT(adversary.stats().drops, 0u);
  EXPECT_GT(engine.stats().aborted_mid_commit, 0u);
  // Aborted two-phase exchanges release both locks.
  for (SlotId s = 0; s < engine.tracked_slots(); ++s) {
    const SlotId peer = engine.negotiation_peer(s);
    if (peer != kInvalidSlot) {
      EXPECT_EQ(engine.negotiation_peer(peer), s);
    }
  }
  EXPECT_TRUE(fx.net.placement().validate());
}

TEST(AdversaryModels, EclipseCohortSteersButCannotFullyIsolate) {
  auto fx = UnstructuredFixture::make(60, 9513);
  Simulator sim;
  PropEngine engine(fx.net, sim, adversary_test_params(PropMode::kPropG),
                    66);
  AdversaryParams params;
  params.eclipse_fraction = 0.1;
  AdversaryLayer adversary(fx.net, params, 67);
  engine.set_adversary(&adversary);
  const SlotId target = adversary.eclipse_target();
  ASSERT_NE(target, kInvalidSlot);
  engine.start();
  sim.run_until(4000.0);
  EXPECT_GT(adversary.stats().eclipse_attempts, 0u);
  // PROP-G moves hosts only: the logical graph is untouched, so the
  // target keeps its degree no matter how many seats are captured.
  EXPECT_TRUE(fx.net.placement().validate());
  const auto neighbors = fx.net.graph().neighbors(target);
  std::size_t cohort = 0;
  for (SlotId s = 0; s < static_cast<SlotId>(fx.net.graph().slot_count());
       ++s) {
    if (fx.net.graph().is_active(s) &&
        adversary.role_of(s) == PeerRole::kEclipse) {
      ++cohort;
    }
  }
  std::size_t honest_neighbors = 0;
  for (const SlotId n : neighbors) {
    if (adversary.role_of(n) != PeerRole::kEclipse) ++honest_neighbors;
  }
  EXPECT_EQ(adversary.eclipse_captured(),
            neighbors.size() - honest_neighbors);
  // The cohort cannot capture more seats than it has members: whenever
  // the neighborhood is bigger than the cohort, at least one honest
  // neighbor survives and the victim is never fully eclipsed.
  if (neighbors.size() > cohort) {
    EXPECT_GE(honest_neighbors, 1u);
  }
}

// ------------------------------- differential fuzz: negotiation locks --

TEST(AdversaryFuzz, NoOrphanLocksOrPendingLeaksUnderAnyModel) {
  struct ModelCase {
    const char* name;
    AdversaryParams params;
    PropMode mode;
  };
  std::vector<ModelCase> cases;
  {
    AdversaryParams p;
    p.liar_fraction = 0.25;
    cases.push_back({"liar", p, PropMode::kPropO});
  }
  {
    AdversaryParams p;
    p.freeride_fraction = 0.25;
    cases.push_back({"free-rider", p, PropMode::kPropO});
  }
  {
    AdversaryParams p;
    p.dropper_fraction = 0.25;
    p.drop_probability = 0.7;
    cases.push_back({"dropper", p, PropMode::kPropG});
  }
  {
    AdversaryParams p;
    p.eclipse_fraction = 0.1;
    cases.push_back({"eclipse", p, PropMode::kPropG});
  }
  {
    AdversaryParams p;
    p.liar_fraction = 0.15;
    p.freeride_fraction = 0.1;
    p.dropper_fraction = 0.1;
    p.drop_probability = 0.5;
    cases.push_back({"mix", p, PropMode::kPropO});
  }
  for (const ModelCase& c : cases) {
    for (const std::uint64_t seed : {9601ull, 9602ull, 9603ull}) {
      auto fx = UnstructuredFixture::make(40, seed);
      Simulator sim;
      PropEngine engine(fx.net, sim, adversary_test_params(c.mode),
                        seed + 1);
      AdversaryLayer adversary(fx.net, c.params, seed + 2);
      engine.set_adversary(&adversary);
      engine.start();
      // Chunked run: audit the two-phase lock table mid-flight, where a
      // leaked lock would still be visible, not just at quiescence.
      for (double t = 250.0; t <= 2000.0; t += 250.0) {
        sim.run_until(t);
        const SnapshotGraph snap = snapshot_of(fx.net.graph());
        const NegotiationLockView locks =
            negotiation_lock_view(engine, fx.net.graph());
        const LintContext ctx{.graph = &snap, .locks = &locks};
        const LintReport report =
            InvariantChecker(std::vector<std::string>{"negotiation-locks"})
                .run(ctx);
        EXPECT_TRUE(report.passed())
            << c.name << " seed " << seed << " t=" << t << ":\n"
            << report.to_string();
      }
      EXPECT_TRUE(fx.net.placement().validate()) << c.name;
    }
  }
}

// ----------------------------------------------- correlated failures --

TEST(FaultInjectorStorm, FailsEnumeratedVictimsEvenlyWithoutRng) {
  Simulator sim;
  FaultParams params;
  params.storms.push_back(StormWindow{0, 10.0, 6.0});
  FaultInjector faults(sim, params, 70);
  std::vector<SlotId> failed;
  std::vector<double> when;
  FnFailureExecutor executor([&](SlotId victim) {
    failed.push_back(victim);
    when.push_back(sim.now());
    return true;
  });
  faults.set_failure_executor(&executor);
  faults.set_storm_enumerator(
      [](std::uint32_t) { return std::vector<SlotId>{4, 7, 9}; });
  faults.start();
  sim.run_until(20.0);
  ASSERT_EQ(failed.size(), 3u);
  EXPECT_EQ(failed, (std::vector<SlotId>{4, 7, 9}));
  EXPECT_EQ(faults.stats().storm_failures, 3u);
  // Even spacing across the window: 10 + {1.5, 3.0, 4.5}.
  EXPECT_DOUBLE_EQ(when[0], 11.5);
  EXPECT_DOUBLE_EQ(when[1], 13.0);
  EXPECT_DOUBLE_EQ(when[2], 14.5);
}

TEST(FaultInjectorStorm, ScheduleDoesNotPerturbTheLossStream) {
  // Satellite regression: arming a storm must not shift the injector's
  // private RNG stream — the loss schedule with and without a storm is
  // identical draw for draw.
  Simulator sim_a;
  Simulator sim_b;
  FaultParams plain;
  plain.message_loss = 0.25;
  FaultParams stormy = plain;
  stormy.storms.push_back(StormWindow{0, 5.0, 3.0});
  FaultInjector a(sim_a, plain, 77);
  FaultInjector b(sim_b, stormy, 77);
  b.start();  // arms the storm; no enumerator/executor => no victims
  sim_b.run_until(20.0);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.deliver(0, 1), b.deliver(0, 1)) << "draw " << i;
  }
}

TEST(FaultInjectorBurst, GilbertElliottMatchesStationaryRateAndDwell) {
  Simulator sim;
  FaultParams params;
  params.message_loss = 0.2;
  params.loss_burst_len = 8;
  FaultInjector faults(sim, params, 78);
  const int n = 60000;
  int lost = 0;
  std::vector<int> runs;
  int run = 0;
  for (int i = 0; i < n; ++i) {
    if (!faults.deliver(0, 1)) {
      ++lost;
      ++run;
    } else if (run > 0) {
      runs.push_back(run);
      run = 0;
    }
  }
  // Stationary loss fraction equals message_loss...
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.02);
  // ...and the mean burst length equals loss_burst_len.
  ASSERT_FALSE(runs.empty());
  double total = 0.0;
  for (const int r : runs) total += r;
  EXPECT_NEAR(total / static_cast<double>(runs.size()), 8.0, 1.5);
  // Every burst-mode loss is double-counted in both tallies.
  EXPECT_EQ(faults.stats().burst_losses, faults.stats().losses);
}

// -------------------------------------------------- experiment wiring --

ExperimentSpec parse_spec(const std::string& text) {
  const SpecResult parsed = ExperimentSpec::from_config(Config::parse(text));
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  return parsed.spec();
}

const char kSmallBase[] =
    "nodes = 64\nhorizon = 400\nsample_interval = 100\n"
    "queries = 300\ninit_timer = 10\nprotocol = prop-o\n"
    "model_message_delays = true\n";

/// Drops the wall-clock lines (`"wall_ms": ...`) from a dumped result:
/// they measure host time, the one legitimately nondeterministic field.
std::string without_wall_ms(const std::string& json) {
  std::string out;
  std::size_t pos = 0;
  while (pos < json.size()) {
    const std::size_t eol = json.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? json.size() : eol + 1;
    const std::string_view line(json.data() + pos, end - pos);
    if (line.find("\"wall_ms\"") == std::string_view::npos) {
      out.append(line);
    }
    pos = end;
  }
  return out;
}

TEST(ExperimentAdversary, ZeroKnobsAreByteIdenticalToNoKeys) {
  // The acceptance contract: every adversary/storm/burst knob at zero
  // never constructs a layer or shifts a stream, so the full result
  // JSON matches a config without any of the keys byte for byte — on
  // the honest config and on a faulted one.
  const std::string zero_keys =
      "adversary_liar_fraction = 0\nadversary_freeride_fraction = 0\n"
      "adversary_dropper_fraction = 0\nadversary_eclipse_fraction = 0\n"
      "fault_loss_burst_len = 0\n";
  for (const std::string& base :
       {std::string(kSmallBase),
        std::string(kSmallBase) + "fault_loss = 0.1\nfault_jitter = 0.2\n"}) {
    const ExperimentSpec plain_spec = parse_spec(base);
    const ExperimentSpec zeroed_spec = parse_spec(base + zero_keys);
    const std::string plain = without_wall_ms(
        experiment_result_json(plain_spec, run_experiment(plain_spec))
            .dump(2));
    const std::string zeroed = without_wall_ms(
        experiment_result_json(zeroed_spec, run_experiment(zeroed_spec))
            .dump(2));
    EXPECT_EQ(plain, zeroed);
  }
}

TEST(ExperimentAdversary, LiarRunSurfacesCountersV6AndStanza) {
  const ExperimentSpec spec = parse_spec(std::string(kSmallBase) +
                                         "adversary_liar_fraction = 0.3\n");
  const ExperimentResult result = run_experiment(spec);
  EXPECT_GT(result.adversary_lies, 0u);
  bool lies_seen = false;
  for (const auto& [name, value] : result.counters()) {
    if (name == "adversary_lies") {
      lies_seen = true;
      EXPECT_EQ(value, result.adversary_lies);
    }
  }
  EXPECT_TRUE(lies_seen);
  const Json json = experiment_result_json(spec, result);
  const Json* adversary = json.find("adversary");
  ASSERT_NE(adversary, nullptr);
  ASSERT_NE(adversary->find("lies"), nullptr);
  // Honest runs carry no stanza at all.
  const ExperimentSpec honest = parse_spec(kSmallBase);
  const Json honest_json = experiment_result_json(honest,
                                                  run_experiment(honest));
  EXPECT_EQ(honest_json.find("adversary"), nullptr);
}

TEST(ExperimentAdversary, StormFailsDomainAndChurnRepairs) {
  const ExperimentSpec spec = parse_spec(
      std::string(kSmallBase) +
      "fault_storm_domain = auto\nfault_storm_start = 100\n"
      "fault_storm_window = 50\n");
  const ExperimentResult result = run_experiment(spec);
  EXPECT_GT(result.fault_storm_failures, 0u);
  // The churn repair path re-stitched survivors: the overlay ends
  // connected despite losing a whole stub domain at once.
  EXPECT_TRUE(result.connected);
  EXPECT_LT(result.final_population, 64u);
  const Json json = experiment_result_json(spec, result);
  const Json* faults = json.find("faults");
  ASSERT_NE(faults, nullptr);
  ASSERT_NE(faults->find("storms"), nullptr);
  ASSERT_NE(faults->find("storm_failures"), nullptr);
}

TEST(ExperimentAdversary, BurstLossSurfacesInResult) {
  const ExperimentSpec spec = parse_spec(
      std::string(kSmallBase) +
      "fault_loss = 0.2\nfault_loss_burst_len = 8\n");
  const ExperimentResult result = run_experiment(spec);
  EXPECT_GT(result.fault_burst_losses, 0u);
  EXPECT_EQ(result.fault_burst_losses, result.fault_losses);
  const Json json = experiment_result_json(spec, result);
  const Json* faults = json.find("faults");
  ASSERT_NE(faults, nullptr);
  ASSERT_NE(faults->find("loss_burst_len"), nullptr);
  ASSERT_NE(faults->find("burst_losses"), nullptr);
}

TEST(ExperimentAdversary, InvalidKnobsAreRejected) {
  // Adversary models require the unstructured overlay + PROP.
  EXPECT_FALSE(ExperimentSpec::from_config(Config::parse(
                   std::string(kSmallBase) +
                   "overlay = chord\nprotocol = prop-g\n"
                   "adversary_liar_fraction = 0.1\n"))
                   .ok());
  // Eclipse needs PROP-G (prop-o in kSmallBase).
  EXPECT_FALSE(ExperimentSpec::from_config(
                   Config::parse(std::string(kSmallBase) +
                                 "adversary_eclipse_fraction = 0.1\n"))
                   .ok());
  // Fractions must leave an honest remainder.
  EXPECT_FALSE(ExperimentSpec::from_config(
                   Config::parse(std::string(kSmallBase) +
                                 "adversary_liar_fraction = 0.5\n"
                                 "adversary_freeride_fraction = 0.5\n"))
                   .ok());
  // Burst length without a loss rate is meaningless.
  EXPECT_FALSE(ExperimentSpec::from_config(
                   Config::parse(std::string(kSmallBase) +
                                 "fault_loss_burst_len = 8\n"))
                   .ok());
  // Storms need all three keys...
  EXPECT_FALSE(ExperimentSpec::from_config(
                   Config::parse(std::string(kSmallBase) +
                                 "fault_storm_domain = auto\n"))
                   .ok());
  // ...and a transit-stub topology.
  EXPECT_FALSE(ExperimentSpec::from_config(
                   Config::parse(std::string(kSmallBase) +
                                 "topology = waxman\n"
                                 "fault_storm_domain = 0\n"
                                 "fault_storm_start = 10\n"
                                 "fault_storm_window = 20\n"))
                   .ok());
  // An eclipse target without an eclipse cohort is a config smell.
  EXPECT_FALSE(ExperimentSpec::from_config(
                   Config::parse(std::string(kSmallBase) +
                                 "adversary_eclipse_target = 3\n"))
                   .ok());
  // A lie factor outside (0, 1] is rejected.
  EXPECT_FALSE(ExperimentSpec::from_config(
                   Config::parse(std::string(kSmallBase) +
                                 "adversary_liar_fraction = 0.1\n"
                                 "adversary_lie_factor = 0\n"))
                   .ok());
}

}  // namespace
}  // namespace propsim
