#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace propsim {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(200);
  pool.parallel_for(200, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksFewWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 999L * 1000L / 2L);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  pool.shutdown();
  try {
    pool.submit([] { return 1; });
    FAIL() << "submit on a stopped pool must throw";
  } catch (const std::runtime_error& e) {
    // The message must name the failure mode, not just say "error".
    EXPECT_NE(std::string(e.what()).find("shut down"), std::string::npos);
  }
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // second call must be a no-op, not a crash
  EXPECT_THROW(pool.parallel_for(3, [](std::size_t) {}),
               std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    // Futures discarded; destructor must still run all queued tasks or
    // at least join without deadlock. Give tasks a chance to drain.
    pool.parallel_for(1, [](std::size_t) {});
  }
  EXPECT_GE(done.load(), 1);
}

}  // namespace
}  // namespace propsim
