#include <gtest/gtest.h>

#include "core/prop_engine.h"
#include "core/swap_log.h"
#include "fixtures.h"
#include "sim/simulator.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

TEST(SwapLog, RecordAndPrune) {
  SwapLog log;
  log.record(10.0, 1, 2);
  log.record(20.0, 3, 4);
  log.record(30.0, 1, 5);
  EXPECT_EQ(log.size(), 3u);
  log.prune(20.0);
  EXPECT_EQ(log.size(), 2u);
  log.prune(100.0);
  EXPECT_EQ(log.size(), 0u);
}

TEST(SwapLog, StaleHopsWithinWindowOnly) {
  SwapLog log;
  log.record(100.0, 2, 7);
  const std::vector<SlotId> path{0, 2, 5};
  // Hop onto slot 2 within the window counts; source never counts.
  EXPECT_EQ(log.stale_hops(path, 105.0, 30.0), 1u);
  // Outside the window: clean.
  EXPECT_EQ(log.stale_hops(path, 200.0, 30.0), 0u);
  // Before the swap even happened: clean.
  EXPECT_EQ(log.stale_hops(path, 99.0, 30.0), 0u);
  // Both counterparts are stale positions.
  const std::vector<SlotId> path2{0, 7, 2};
  EXPECT_EQ(log.stale_hops(path2, 105.0, 30.0), 2u);
  // The source slot being swapped does not count (it routes fresh).
  const std::vector<SlotId> path3{2, 5};
  EXPECT_EQ(log.stale_hops(path3, 105.0, 30.0), 0u);
}

TEST(SwapLog, TransientLatencyAddsCounterpartHop) {
  auto fx = UnstructuredFixture::make(30, 8001);
  SwapLog log;
  const std::vector<SlotId> path{0, 1, 2};
  const double base = path_latency(fx.net, path);
  EXPECT_DOUBLE_EQ(log.transient_path_latency(fx.net, path, 50.0, 30.0),
                   base);
  log.record(40.0, 1, 9);
  const double expected = base + fx.net.slot_latency(1, 9);
  EXPECT_DOUBLE_EQ(log.transient_path_latency(fx.net, path, 50.0, 30.0),
                   expected);
  // Window expired: back to base.
  EXPECT_DOUBLE_EQ(log.transient_path_latency(fx.net, path, 200.0, 30.0),
                   base);
}

TEST(SwapLog, MostRecentSwapWins) {
  auto fx = UnstructuredFixture::make(30, 8002);
  SwapLog log;
  log.record(10.0, 1, 5);
  log.record(20.0, 1, 8);
  const std::vector<SlotId> path{0, 1};
  const double base = path_latency(fx.net, path);
  // Penalty priced against the latest counterpart (slot 8).
  EXPECT_DOUBLE_EQ(log.transient_path_latency(fx.net, path, 25.0, 30.0),
                   base + fx.net.slot_latency(1, 8));
}

TEST(SwapLog, EngineRecordsCommittedSwaps) {
  auto fx = UnstructuredFixture::make(40, 8003);
  Simulator sim;
  PropParams params;
  params.init_timer_s = 10.0;
  PropEngine engine(fx.net, sim, params, 3);
  SwapLog log;
  engine.set_swap_log(&log);
  engine.start();
  sim.run_until(1000.0);
  EXPECT_EQ(log.size(), engine.stats().exchanges);
  EXPECT_GT(log.size(), 0u);
}

TEST(SwapLog, PropOExchangesAreNotRecorded) {
  auto fx = UnstructuredFixture::make(40, 8004);
  Simulator sim;
  PropParams params;
  params.mode = PropMode::kPropO;
  params.init_timer_s = 10.0;
  PropEngine engine(fx.net, sim, params, 4);
  SwapLog log;
  engine.set_swap_log(&log);
  engine.start();
  sim.run_until(1000.0);
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_EQ(log.size(), 0u);  // PROP-O rewires edges; no position swap
}

}  // namespace
}  // namespace propsim
