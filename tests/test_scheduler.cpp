// Scheduler API: SerialScheduler semantics through the interface, and
// the ShardedScheduler determinism contract — bit-identical execution
// at any shard count and window, equal-time FIFO tie-break across a
// handoff boundary, cancellation of buffered handoffs.
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/local_ticks.h"
#include "sim/serial_scheduler.h"
#include "sim/sharded_scheduler.h"

namespace propsim {
namespace {

// --------------------------------------------------- interface basics ----

// Producers take Scheduler&; any implementation must satisfy them.
int run_three_through_interface(Scheduler& sim) {
  int sum = 0;
  sim.schedule_in(2.0, [&] { sum += 100; });
  sim.schedule_in(1.0, [&] { sum += 10; });
  sim.schedule_at(3.0, [&] { sum += 1; });
  sim.run_until(10.0);
  return sum;
}

TEST(Scheduler, PolymorphicUseMatchesAcrossImplementations) {
  SerialScheduler serial;
  ShardedScheduler sharded(4);
  EXPECT_EQ(run_three_through_interface(serial), 111);
  EXPECT_EQ(run_three_through_interface(sharded), 111);
  EXPECT_EQ(serial.executed_events(), 3u);
  EXPECT_EQ(sharded.executed_events(), 3u);
  EXPECT_EQ(serial.scheduled_events(), 3u);
  EXPECT_EQ(sharded.scheduled_events(), 3u);
}

TEST(Scheduler, ShardMapAnswersAndDefaultsToNoShard) {
  SerialScheduler sim;
  EXPECT_EQ(sim.shard_of(0), kNoShard);  // no map installed
  sim.set_shard_map({0, 1, 2, 0});
  EXPECT_EQ(sim.shard_of(1), 1u);
  EXPECT_EQ(sim.shard_of(3), 0u);
  EXPECT_EQ(sim.shard_of(99), kNoShard);  // out of range
}

TEST(Scheduler, CancelCountsOnceAndPendingDrops) {
  ShardedScheduler sim(2);
  const EventId id = sim.schedule_in(1.0, [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_events(), 1u);
  sim.run_until(5.0);
  EXPECT_EQ(sim.executed_events(), 0u);
}

// ----------------------------------------- sharded semantics, targeted ----

TEST(ShardedScheduler, EqualTimeFifoTieBreakSurvivesHandoff) {
  // Window [0.1, 0.6]. The shard-0 event schedules X onto shard 1 at
  // t=1.0 — cross-shard, beyond the window, so X rides the handoff
  // buffer. The shard-1 event then schedules Y onto its own shard at the
  // same t=1.0, straight into the heap. X was scheduled first, gets the
  // smaller id, and must still fire first after the detour.
  ShardedScheduler sim(2, /*window_s=*/0.5);
  std::vector<std::string> order;
  EventId x = kInvalidEvent;
  EventId y = kInvalidEvent;
  sim.schedule_at(0.1, /*shard=*/0, [&] {
    x = sim.schedule_at(1.0, /*shard=*/1, [&] { order.push_back("X"); });
  });
  sim.schedule_at(0.2, /*shard=*/1, [&] {
    y = sim.schedule_at(1.0, /*shard=*/1, [&] { order.push_back("Y"); });
  });
  sim.run_until(2.0);
  ASSERT_LT(x, y);  // schedule order assigns the tie-breaking ids
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "X");
  EXPECT_EQ(order[1], "Y");
  EXPECT_GE(sim.stats().handoffs, 1u);
}

TEST(ShardedScheduler, CancelReachesEventParkedInHandoffBuffer) {
  ShardedScheduler sim(2, /*window_s=*/0.5);
  bool fired = false;
  EventId x = kInvalidEvent;
  sim.schedule_at(0.1, /*shard=*/0, [&] {
    x = sim.schedule_at(1.0, /*shard=*/1, [&] { fired = true; });
  });
  // A later event in the same window cancels X while it sits in the
  // (0 -> 1) handoff buffer, before any flush.
  sim.schedule_at(0.2, /*shard=*/0, [&] {
    EXPECT_TRUE(sim.cancel(x));
    EXPECT_FALSE(sim.cancel(x));  // second cancel: already gone
  });
  sim.run_until(2.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_events(), 1u);
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(ShardedScheduler, CrossShardEventInsideOpenWindowKeepsGlobalOrder) {
  // The t=0.1 callback schedules a cross-shard event at t=0.3 — inside
  // the already-drained window [0.1, 0.6] — which must still execute
  // before the pre-existing t=0.4 event on the other shard.
  ShardedScheduler sim(2, /*window_s=*/0.5);
  std::vector<int> order;
  sim.schedule_at(0.4, /*shard=*/1, [&] { order.push_back(2); });
  sim.schedule_at(0.1, /*shard=*/0, [&] {
    order.push_back(1);
    sim.schedule_at(0.3, /*shard=*/1, [&] { order.push_back(3); });
  });
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_GE(sim.stats().live_reroutes, 1u);
}

TEST(ShardedScheduler, StepExecutesGloballyEarliestAcrossShards) {
  ShardedScheduler sim(4, /*window_s=*/0.5);
  std::vector<int> order;
  sim.schedule_at(3.0, 2, [&] { order.push_back(3); });
  sim.schedule_at(1.0, 3, [&] { order.push_back(1); });
  sim.schedule_at(2.0, 0, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.step());
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_TRUE(sim.step());
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedScheduler, RunUntilClampsClockLikeSerial) {
  ShardedScheduler sim(2);
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run_until(5.0);  // boundary event fires
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(ShardedScheduler, AuditHookFiresAtSameCountsAsSerial) {
  const auto run = [](Scheduler& sim) {
    std::vector<std::pair<std::uint64_t, double>> audits;
    sim.set_audit(
        [&](const Scheduler& s) {
          audits.emplace_back(s.executed_events(), s.now());
        },
        3);
    for (int i = 0; i < 10; ++i) {
      sim.schedule_in(static_cast<double>(i) * 0.1, [] {});
    }
    sim.run_until(5.0);
    return audits;
  };
  SerialScheduler serial;
  ShardedScheduler sharded(3, /*window_s=*/0.25);
  EXPECT_EQ(run(serial), run(sharded));
}

// --------------------------------------------------- differential fuzz ----

// Seed-driven self-scheduling workload: events spawn children (some at
// zero delay to stress the FIFO tie-break), cancel random pending ids,
// and log (tag, now) on execution. Driven through Scheduler&, the log —
// and every RNG draw — must be identical on every implementation.
class FuzzWorkload {
 public:
  static constexpr int kMaxEvents = 400;

  FuzzWorkload(Scheduler& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

  void start(int initial) {
    for (int i = 0; i < initial; ++i) {
      spawn(rng_.uniform_double(0.0, 5.0));
    }
  }

  const std::vector<std::pair<int, double>>& log() const { return log_; }

 private:
  void spawn(double delay) {
    const int tag = next_tag_++;
    // Mix pinned and unpinned events; the pin is a routing hint only.
    const ShardId shard =
        rng_.bernoulli(0.3)
            ? kNoShard
            : sim_.shard_of(static_cast<std::uint32_t>(tag % 16));
    ids_.push_back(
        sim_.schedule_in(delay, shard, [this, tag] { on_event(tag); }));
  }

  void on_event(int tag) {
    log_.emplace_back(tag, sim_.now());
    const auto children = rng_.uniform_int(0, 2);
    for (std::int64_t c = 0; c < children && next_tag_ < kMaxEvents; ++c) {
      spawn(rng_.bernoulli(0.25) ? 0.0 : rng_.uniform_double(0.0, 2.0));
    }
    if (!ids_.empty() && rng_.bernoulli(0.2)) {
      const auto k = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(ids_.size()) - 1));
      sim_.cancel(ids_[k]);  // often a no-op (already ran); still logged
    }
  }

  Scheduler& sim_;
  Rng rng_;
  std::vector<EventId> ids_;
  std::vector<std::pair<int, double>> log_;
  int next_tag_ = 0;
};

std::vector<ShardId> fuzz_shard_map(std::size_t shard_count) {
  std::vector<ShardId> map(16);
  for (std::size_t i = 0; i < map.size(); ++i) {
    map[i] = static_cast<ShardId>(i % shard_count);
  }
  return map;
}

TEST(ShardedScheduler, ExecutionBitIdenticalToSerialUnderFuzz) {
  for (const std::uint64_t seed : {7ULL, 21ULL, 97ULL}) {
    SerialScheduler serial;
    serial.set_shard_map(fuzz_shard_map(1));
    FuzzWorkload reference(serial, seed);
    reference.start(24);
    serial.run_until(60.0);
    ASSERT_GT(serial.executed_events(), 0u);

    for (const std::size_t shards : {2u, 3u, 8u}) {
      for (const double window : {0.1, 1.0, 1e6}) {
        ShardedScheduler sharded(shards, window);
        sharded.set_shard_map(fuzz_shard_map(shards));
        FuzzWorkload workload(sharded, seed);
        workload.start(24);
        sharded.run_until(60.0);
        EXPECT_EQ(workload.log(), reference.log())
            << "seed " << seed << " shards " << shards << " window "
            << window;
        EXPECT_EQ(sharded.executed_events(), serial.executed_events());
        EXPECT_EQ(sharded.scheduled_events(), serial.scheduled_events());
        EXPECT_EQ(sharded.cancelled_events(), serial.cancelled_events());
        EXPECT_EQ(sharded.pending_events(), serial.pending_events());
        EXPECT_DOUBLE_EQ(sharded.now(), serial.now());
      }
    }
  }
}

TEST(ShardedScheduler, FuzzKeepsWindowMachineryBusy) {
  // Sanity that the fuzz above actually exercises the sharded paths.
  ShardedScheduler sharded(4, 0.5);
  sharded.set_shard_map(fuzz_shard_map(4));
  FuzzWorkload workload(sharded, 7);
  workload.start(24);
  sharded.run_until(60.0);
  EXPECT_GT(sharded.stats().windows, 0u);
  EXPECT_GT(sharded.stats().drained, 0u);
  EXPECT_GT(sharded.stats().handoffs + sharded.stats().live_reroutes, 0u);
}

// ------------------------------------------------ speculative execution ----

using sim::LocalTickParams;
using sim::LocalTickProcess;

void expect_counters_match(const Scheduler& got, const Scheduler& want) {
  EXPECT_EQ(got.executed_events(), want.executed_events());
  EXPECT_EQ(got.scheduled_events(), want.scheduled_events());
  EXPECT_EQ(got.cancelled_events(), want.cancelled_events());
  EXPECT_EQ(got.pending_events(), want.pending_events());
  EXPECT_DOUBLE_EQ(got.now(), want.now());
}

TEST(ShardedScheduler, SpeculativeAllLocalBitIdenticalToSerial) {
  // Pure shard-local tick chains: with no global events the cutoff is
  // open and everything runs off the merge thread, conflict-free.
  LocalTickParams params;
  params.period_s = 0.4;
  params.end_s = 30.0;
  SerialScheduler serial;
  LocalTickProcess reference(serial, params, /*domains=*/12, /*seed=*/11);
  reference.start();
  serial.run_until(30.0);
  ASSERT_GT(reference.ticks(), 0u);

  for (const std::size_t shards : {2u, 3u, 8u}) {
    for (const double window : {0.05, 0.5, 1e6}) {
      ShardedScheduler sharded(shards, window, /*speculative=*/true);
      ASSERT_TRUE(sharded.speculative());
      LocalTickProcess ticks(sharded, params, 12, 11);
      ticks.start();
      sharded.run_until(30.0);
      EXPECT_EQ(ticks.ticks(), reference.ticks());
      EXPECT_EQ(ticks.digest(), reference.digest());
      expect_counters_match(sharded, serial);
      EXPECT_GT(sharded.stats().speculated, 0u) << shards << "/" << window;
      EXPECT_EQ(sharded.stats().replayed, 0u);
      EXPECT_EQ(sharded.stats().conflicts, 0u);
      EXPECT_DOUBLE_EQ(sharded.stats().conflict_rate(), 0.0);
    }
  }
}

TEST(ShardedScheduler, SpeculativeMixedWorkloadBitIdenticalToSerial) {
  // Local tick chains interleaved with the global fuzz workload: global
  // events truncate speculative prefixes mid-window, forcing replays,
  // and the result must still match serial bit for bit.
  LocalTickParams params;
  params.period_s = 0.15;
  params.end_s = 60.0;
  for (const std::uint64_t seed : {7ULL, 21ULL, 97ULL}) {
    SerialScheduler serial;
    serial.set_shard_map(fuzz_shard_map(1));
    FuzzWorkload ref_fuzz(serial, seed);
    LocalTickProcess ref_ticks(serial, params, /*domains=*/8, seed + 1);
    ref_fuzz.start(24);
    ref_ticks.start();
    serial.run_until(60.0);

    std::uint64_t total_speculated = 0;
    std::uint64_t total_replayed = 0;
    std::uint64_t total_conflicts = 0;
    for (const std::size_t shards : {2u, 3u, 8u}) {
      for (const double window : {0.1, 1.0, 1e6}) {
        ShardedScheduler sharded(shards, window, /*speculative=*/true);
        sharded.set_shard_map(fuzz_shard_map(shards));
        FuzzWorkload fuzz(sharded, seed);
        LocalTickProcess ticks(sharded, params, 8, seed + 1);
        fuzz.start(24);
        ticks.start();
        sharded.run_until(60.0);
        EXPECT_EQ(fuzz.log(), ref_fuzz.log())
            << "seed " << seed << " shards " << shards << " window "
            << window;
        EXPECT_EQ(ticks.ticks(), ref_ticks.ticks());
        EXPECT_EQ(ticks.digest(), ref_ticks.digest());
        expect_counters_match(sharded, serial);
        total_speculated += sharded.stats().speculated;
        total_replayed += sharded.stats().replayed;
        total_conflicts += sharded.stats().conflicts;
      }
    }
    // The sweep must actually exercise both the speculative fast path
    // and the conflict-replay path.
    EXPECT_GT(total_speculated, 0u);
    EXPECT_GT(total_replayed, 0u);
    EXPECT_GT(total_conflicts, 0u);
  }
}

TEST(ShardedScheduler, SpeculativeSpawnAtExactWindowEndRunsInWindow) {
  // Window anchors at t=0.1 and spans 0.5, so it closes exactly at 0.6.
  // A speculated callback spawns its next event at precisely the window
  // end — still inside the window, still before the (absent) cutoff, so
  // it must execute within the same speculative pass.
  ShardedScheduler sim(2, /*window_s=*/0.5, /*speculative=*/true);
  std::vector<double> shard0_times;
  std::vector<double> shard1_times;
  sim.schedule_at(0.1, /*shard=*/0, sim::Locality::kShardLocal, [&] {
    shard0_times.push_back(sim.now());
    sim.schedule_at(0.6, /*shard=*/0, sim::Locality::kShardLocal,
                    [&] { shard0_times.push_back(sim.now()); });
  });
  sim.schedule_at(0.55, /*shard=*/1, sim::Locality::kShardLocal,
                  [&] { shard1_times.push_back(sim.now()); });
  sim.run_until(2.0);
  EXPECT_EQ(shard0_times, (std::vector<double>{0.1, 0.6}));
  EXPECT_EQ(shard1_times, (std::vector<double>{0.55}));
  EXPECT_EQ(sim.executed_events(), 3u);
  EXPECT_EQ(sim.stats().windows, 1u);
  EXPECT_EQ(sim.stats().speculated, 3u);
  EXPECT_EQ(sim.stats().replayed, 0u);
}

TEST(ShardedScheduler, SpeculativeTinyWindowsOneEventEach) {
  // shard_window far below the minimum event spacing: every window
  // holds a single event and the machinery must neither stall nor
  // diverge from serial.
  LocalTickParams params;
  params.period_s = 5.0;
  params.end_s = 50.0;
  SerialScheduler serial;
  LocalTickProcess reference(serial, params, /*domains=*/4, /*seed=*/3);
  reference.start();
  serial.run_until(50.0);

  ShardedScheduler sharded(4, /*window_s=*/0.01, /*speculative=*/true);
  LocalTickProcess ticks(sharded, params, 4, 3);
  ticks.start();
  sharded.run_until(50.0);
  EXPECT_EQ(ticks.ticks(), reference.ticks());
  EXPECT_EQ(ticks.digest(), reference.digest());
  expect_counters_match(sharded, serial);
  EXPECT_EQ(sharded.stats().speculated, sharded.executed_events());
  EXPECT_GE(sharded.stats().windows, sharded.executed_events());
}

TEST(ShardedScheduler, SpeculativeCancelOfOwnSpawnInsideCallback) {
  // A speculated callback schedules a same-shard local event and
  // immediately cancels the provisional id. Counters must match serial
  // exactly: one schedule, one cancel, never executed.
  const auto run = [](Scheduler& sim) {
    bool spawned_ran = false;
    sim.schedule_at(0.1, /*shard=*/0, sim::Locality::kShardLocal, [&] {
      const EventId id =
          sim.schedule_at(0.2, /*shard=*/0, sim::Locality::kShardLocal,
                          [&] { spawned_ran = true; });
      EXPECT_TRUE(sim.cancel(id));
      EXPECT_FALSE(sim.cancel(id));
    });
    // Keep the second shard busy so the pass has real overlap.
    sim.schedule_at(0.15, /*shard=*/1, sim::Locality::kShardLocal, [] {});
    sim.run_until(1.0);
    return spawned_ran;
  };
  SerialScheduler serial;
  ShardedScheduler sharded(2, /*window_s=*/0.5, /*speculative=*/true);
  EXPECT_FALSE(run(serial));
  EXPECT_FALSE(run(sharded));
  EXPECT_GT(sharded.stats().speculated, 0u);
  expect_counters_match(sharded, serial);
  EXPECT_EQ(sharded.cancelled_events(), 1u);
}

TEST(ShardedScheduler, SpeculativeDeferredCancelOfPendingOwnShardEvent) {
  // A speculated callback cancels an own-shard event parked far beyond
  // the window. The cancel is deferred and replayed at the callback's
  // merge slot; the recorded answer must match the live replay.
  const auto run = [](Scheduler& sim) {
    bool far_ran = false;
    const EventId far =
        sim.schedule_at(100.0, /*shard=*/0, sim::Locality::kShardLocal,
                        [&] { far_ran = true; });
    sim.schedule_at(1.0, /*shard=*/0, sim::Locality::kShardLocal,
                    [&sim, far] { EXPECT_TRUE(sim.cancel(far)); });
    sim.schedule_at(1.2, /*shard=*/1, sim::Locality::kShardLocal, [] {});
    sim.run_until(200.0);
    return far_ran;
  };
  SerialScheduler serial;
  ShardedScheduler sharded(2, /*window_s=*/0.5, /*speculative=*/true);
  EXPECT_FALSE(run(serial));
  EXPECT_FALSE(run(sharded));
  EXPECT_GT(sharded.stats().speculated, 0u);
  expect_counters_match(sharded, serial);
  EXPECT_EQ(sharded.cancelled_events(), 1u);
}

TEST(ShardedScheduler, SpeculationStandsDownWhileAuditInstalled) {
  // The audit hook observes global state at exact event boundaries, so
  // a speculative scheduler must fall back to pure serial merging and
  // fire audits at identical counts.
  LocalTickParams params;
  params.period_s = 0.3;
  params.end_s = 20.0;
  const auto run = [&params](Scheduler& sim) {
    std::vector<std::pair<std::uint64_t, double>> audits;
    sim.set_audit(
        [&](const Scheduler& s) {
          audits.emplace_back(s.executed_events(), s.now());
        },
        5);
    LocalTickProcess ticks(sim, params, /*domains=*/6, /*seed=*/9);
    ticks.start();
    sim.run_until(20.0);
    return audits;
  };
  SerialScheduler serial;
  ShardedScheduler sharded(3, /*window_s=*/0.5, /*speculative=*/true);
  EXPECT_EQ(run(serial), run(sharded));
  EXPECT_EQ(sharded.stats().speculated, 0u);
  EXPECT_EQ(sharded.stats().replayed, 0u);
}

TEST(ShardedScheduler, PureGlobalWorkloadNeverSpeculates) {
  // Default-locality events must never enter the speculative pass: the
  // cutoff sits at the window's first event and every prefix is empty.
  ShardedScheduler sharded(4, /*window_s=*/0.5, /*speculative=*/true);
  sharded.set_shard_map(fuzz_shard_map(4));
  FuzzWorkload workload(sharded, 7);
  workload.start(24);
  sharded.run_until(60.0);
  EXPECT_GT(sharded.executed_events(), 0u);
  EXPECT_EQ(sharded.stats().speculated, 0u);
  EXPECT_EQ(sharded.stats().spec_windows, 0u);
  EXPECT_EQ(sharded.stats().conflicts, 0u);
  EXPECT_DOUBLE_EQ(sharded.stats().conflict_rate(), 0.0);
}

TEST(ShardedScheduler, SingleShardConstructionDisarmsSpeculation) {
  ShardedScheduler sim(1, ShardedScheduler::kDefaultWindowS,
                       /*speculative=*/true);
  EXPECT_FALSE(sim.speculative());
  int fired = 0;
  sim.schedule_in(1.0, /*shard=*/0, sim::Locality::kShardLocal,
                  [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.stats().speculated, 0u);
}

}  // namespace
}  // namespace propsim
