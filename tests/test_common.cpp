#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/indexed_priority_queue.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timeseries.h"

namespace propsim {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(31);
  for (std::size_t k : {0ULL, 1ULL, 5ULL, 20ULL}) {
    const auto s = rng.sample_indices(20, k);
    EXPECT_EQ(s.size(), k);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (const auto i : s) EXPECT_LT(i, 20u);
  }
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(37);
  const auto s = rng.sample_indices(8, 8);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a(41);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, PickUniformOverElements) {
  Rng rng(43);
  const std::vector<int> v{10, 20, 30};
  std::array<int, 3> counts{};
  for (int i = 0; i < 3000; ++i) {
    const int x = rng.pick(v);
    counts[static_cast<std::size_t>(x / 10 - 1)]++;
  }
  for (const int c : counts) EXPECT_GT(c, 800);
}

// --------------------------------------------- IndexedPriorityQueue ----

TEST(IndexedPriorityQueue, PopsInPriorityOrder) {
  IndexedPriorityQueue<double> q(10);
  q.push_or_update(3, 5.0);
  q.push_or_update(7, 1.0);
  q.push_or_update(1, 3.0);
  EXPECT_EQ(q.pop(), 7u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 3u);
  EXPECT_TRUE(q.empty());
}

TEST(IndexedPriorityQueue, DecreaseKeyMovesUp) {
  IndexedPriorityQueue<double> q(4);
  q.push_or_update(0, 10.0);
  q.push_or_update(1, 20.0);
  q.push_or_update(1, 5.0);  // decrease
  EXPECT_EQ(q.top_key(), 1u);
  EXPECT_DOUBLE_EQ(q.top_priority(), 5.0);
}

TEST(IndexedPriorityQueue, IncreaseKeyMovesDown) {
  IndexedPriorityQueue<double> q(4);
  q.push_or_update(0, 1.0);
  q.push_or_update(1, 2.0);
  q.push_or_update(0, 9.0);  // increase
  EXPECT_EQ(q.top_key(), 1u);
}

TEST(IndexedPriorityQueue, EraseRemovesKey) {
  IndexedPriorityQueue<double> q(4);
  q.push_or_update(0, 1.0);
  q.push_or_update(1, 2.0);
  EXPECT_TRUE(q.erase(0));
  EXPECT_FALSE(q.erase(0));
  EXPECT_FALSE(q.contains(0));
  EXPECT_EQ(q.pop(), 1u);
}

TEST(IndexedPriorityQueue, StressAgainstSort) {
  Rng rng(47);
  IndexedPriorityQueue<double> q(200);
  std::vector<double> prio(200);
  for (std::size_t i = 0; i < 200; ++i) {
    prio[i] = rng.uniform_double();
    q.push_or_update(i, prio[i]);
  }
  // Random updates.
  for (int i = 0; i < 500; ++i) {
    const std::size_t k = static_cast<std::size_t>(rng.uniform(200));
    prio[k] = rng.uniform_double();
    q.push_or_update(k, prio[k]);
  }
  std::vector<std::size_t> popped;
  while (!q.empty()) popped.push_back(q.pop());
  ASSERT_EQ(popped.size(), 200u);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(prio[popped[i - 1]], prio[popped[i]]);
  }
}

TEST(IndexedPriorityQueue, ClearEmptiesQueue) {
  IndexedPriorityQueue<int> q(5);
  q.push_or_update(2, 1);
  q.push_or_update(4, 2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(2));
  q.push_or_update(2, 7);
  EXPECT_EQ(q.pop(), 2u);
}

// --------------------------------------------------------- statistics ----

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(53);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform_double(0, 10);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 37; ++i) {
    const double x = rng.uniform_double(5, 25);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Samples, QuantileInterpolation) {
  Samples s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 42.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.9);
  h.add(-100.0);  // clamps to first bucket
  h.add(100.0);   // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

// --------------------------------------------------------- timeseries ----

TEST(TimeSeries, RecordAndQuery) {
  TimeSeries ts("x");
  ts.record(0.0, 10.0);
  ts.record(5.0, 20.0);
  ts.record(10.0, 15.0);
  EXPECT_DOUBLE_EQ(ts.first_value(), 10.0);
  EXPECT_DOUBLE_EQ(ts.last_value(), 15.0);
  EXPECT_DOUBLE_EQ(ts.min_value(), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(4.9), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100.0), 15.0);
}

TEST(TimeSeries, ResampleUniformGrid) {
  TimeSeries ts("x");
  ts.record(0.0, 1.0);
  ts.record(10.0, 2.0);
  const TimeSeries r = ts.resample(11);
  EXPECT_EQ(r.size(), 11u);
  EXPECT_DOUBLE_EQ(r[0].value, 1.0);
  EXPECT_DOUBLE_EQ(r[10].value, 2.0);
  EXPECT_DOUBLE_EQ(r[5].value, 1.0);  // step interpolation
}

TEST(TimeSeries, CsvAlignment) {
  TimeSeries a("a");
  a.record(0.0, 1.0);
  a.record(10.0, 3.0);
  TimeSeries b("b");
  b.record(5.0, 7.0);
  b.record(10.0, 8.0);
  const std::string csv = series_to_csv({a, b}, 3);
  EXPECT_NE(csv.find("time,a,b"), std::string::npos);
  EXPECT_NE(csv.find("0,1,7"), std::string::npos);   // b holds first value
  EXPECT_NE(csv.find("5,1,7"), std::string::npos);
  EXPECT_NE(csv.find("10,3,8"), std::string::npos);
}

// --------------------------------------------------------------- json ----

TEST(Json, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ArraysAndObjects) {
  Json arr = Json::array();
  arr.push_back(1).push_back("two").push_back(Json::array());
  EXPECT_EQ(arr.dump(), "[1,\"two\",[]]");
  EXPECT_EQ(arr.size(), 3u);

  Json obj = Json::object();
  obj.set("b", 2).set("a", 1);
  // Keys render sorted (std::map), which keeps output deterministic.
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":2}");
}

TEST(Json, NestedAndPretty) {
  Json obj = Json::object();
  Json inner = Json::array();
  inner.push_back(1).push_back(2);
  obj.set("xs", std::move(inner));
  EXPECT_EQ(obj.dump(), "{\"xs\":[1,2]}");
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find("{\n  \"xs\": [\n    1,\n    2\n  ]\n}"),
            std::string::npos);
}

TEST(Json, LargeIntegersStayIntegral) {
  EXPECT_EQ(Json(std::uint64_t{123456789}).dump(), "123456789");
  EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42");
}

TEST(JsonParse, RoundTripsBuilderOutput) {
  Json obj = Json::object();
  obj.set("name", "propsim").set("pi", 3.25).set("ok", true);
  Json xs = Json::array();
  xs.push_back(1).push_back(Json());
  obj.set("xs", std::move(xs));
  std::string error;
  const auto parsed = Json::parse(obj.dump(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(), obj.dump());
  EXPECT_EQ(parsed->find("name")->as_string(), "propsim");
  EXPECT_DOUBLE_EQ(parsed->find("pi")->as_double(), 3.25);
  EXPECT_TRUE(parsed->find("ok")->as_bool());
  EXPECT_TRUE(parsed->find("xs")->array_items()[1].is_null());
  EXPECT_EQ(parsed->find("missing"), nullptr);
}

TEST(JsonParse, HandlesEscapesAndUnicode) {
  std::string error;
  const auto parsed =
      Json::parse(R"({"s": "a\"b\\c\nAé"})", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->find("s")->as_string(), "a\"b\\c\nA\xc3\xa9");
}

TEST(JsonParse, SurrogatePairsDecodeToUtf8) {
  std::string error;
  const auto parsed = Json::parse(R"(["😀"])", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->array_items()[0].as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "01", "1e", "\"unterminated",
        "{\"a\":1} trailing", "nul", "[1 2]", "{\"a\" 1}"}) {
    std::string error;
    EXPECT_FALSE(Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(400, '[');
  deep += std::string(400, ']');
  EXPECT_FALSE(Json::parse(deep).has_value());
}

TEST(JsonParse, NumbersParseExactly) {
  std::string error;
  const auto parsed =
      Json::parse("[0, -1, 2.5, 1e3, 1.25e-2, 18446744073709551615]", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto& xs = parsed->array_items();
  EXPECT_DOUBLE_EQ(xs[0].as_double(), 0.0);
  EXPECT_DOUBLE_EQ(xs[1].as_double(), -1.0);
  EXPECT_DOUBLE_EQ(xs[2].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(xs[3].as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(xs[4].as_double(), 0.0125);
  EXPECT_DOUBLE_EQ(xs[5].as_double(), 18446744073709551615.0);
}

// -------------------------------------------------------------- table ----

TEST(Table, AsciiAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2.5"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("value"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("beta,2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumericRowFormatting) {
  Table t({"a", "b"});
  t.add_row_values({1.5, 2.25});
  EXPECT_NE(t.to_csv().find("1.5,2.25"), std::string::npos);
}

}  // namespace
}  // namespace propsim
