// detlint unit tests: scanner behavior, every rule against its fixture
// under tests/data/detlint/, and the suppression lifecycle.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "detlint/report.h"
#include "detlint/rules.h"
#include "detlint/scanner.h"

namespace {

using namespace detlint;

std::vector<const Rule*> all_rules() {
  register_builtin_rules();
  std::vector<const Rule*> out;
  for (const auto& rule : RuleRegistry::instance().rules()) {
    out.push_back(rule.get());
  }
  return out;
}

FileScan scan_fixture(const std::string& rel) {
  const std::string full = std::string(DETLINT_FIXTURE_DIR) + "/" + rel;
  std::ifstream in(full, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read fixture " << full;
  std::ostringstream buf;
  buf << in.rdbuf();
  return scan_source(rel, buf.str());
}

struct LintResult {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
};

LintResult lint_fixture(const std::string& rel) {
  const FileScan scan = scan_fixture(rel);
  LintResult r;
  run_rules(scan, all_rules(), r.findings);
  r.suppressions = collect_suppressions(scan);
  apply_suppressions(r.suppressions, r.findings);
  return r;
}

std::vector<const Finding*> by_rule(const LintResult& r,
                                    const std::string& id) {
  std::vector<const Finding*> out;
  for (const Finding& f : r.findings) {
    if (f.rule == id) out.push_back(&f);
  }
  return out;
}

int unsuppressed_count(const LintResult& r) {
  return static_cast<int>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [](const Finding& f) { return !f.suppressed; }));
}

// ------------------------------------------------------------- scanner

TEST(Scanner, TokensCommentsDirectives) {
  const FileScan scan = scan_source("src/x.cpp",
                                    "#include <map>\n"
                                    "// own line\n"
                                    "int x = 1;  // trailing\n"
                                    "/* block\n   spans */ int y;\n");
  ASSERT_EQ(scan.directives.size(), 1u);
  EXPECT_EQ(scan.directives[0].text, "#include <map>");
  ASSERT_EQ(scan.comments.size(), 3u);
  EXPECT_TRUE(scan.comments[0].own_line);
  EXPECT_EQ(scan.comments[0].line, 2);
  EXPECT_FALSE(scan.comments[1].own_line);
  EXPECT_TRUE(scan.comments[2].own_line);
  EXPECT_EQ(scan.comments[2].line, 4);
  EXPECT_EQ(scan.comments[2].end_line, 5);
  EXPECT_FALSE(scan.is_header);
}

TEST(Scanner, StringLiteralsAreOpaque) {
  // Rule patterns and markers inside string literals must not count:
  // the lexer folds them into single kString tokens.
  const FileScan scan = scan_source(
      "src/x.cpp", "const char* s = \"std::unordered_map rand()\";\n");
  LintResult r;
  r.findings.clear();
  run_rules(scan, all_rules(), r.findings);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(collect_suppressions(scan).empty());
}

TEST(Scanner, RawStringsSpanLines) {
  const FileScan scan = scan_source(
      "src/x.cpp", "const char* s = R\"(line1\nline2)\";\nint z = 3;\n");
  const auto z = std::find_if(
      scan.tokens.begin(), scan.tokens.end(),
      [](const Token& t) { return t.text == "z"; });
  ASSERT_NE(z, scan.tokens.end());
  EXPECT_EQ(z->line, 3);
}

TEST(Scanner, HeaderDetectionAndSourcePaths) {
  EXPECT_TRUE(scan_source("src/a.h", "").is_header);
  EXPECT_FALSE(scan_source("src/a.cpp", "").is_header);
  EXPECT_TRUE(is_source_path("src/a.cc"));
  EXPECT_FALSE(is_source_path("src/a.md"));
}

// ------------------------------------------------------------- fixtures

TEST(DetlintRules, D1FiresOnUnorderedInSrc) {
  const LintResult r = lint_fixture("src/d1_unordered.cpp");
  const auto d1 = by_rule(r, "D1");
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_EQ(d1[0]->line, 6);
  EXPECT_FALSE(d1[0]->suppressed);
  EXPECT_EQ(d1[0]->rule_name, "unordered-iteration");
}

TEST(DetlintRules, D1ScopedToSrc) {
  // The same content outside src/ is not simulation-linked.
  const FileScan scan =
      scan_source("tools/x.cpp", "std::unordered_map<int, int> m;\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  EXPECT_TRUE(by_rule({findings, {}}, "D1").empty());
}

TEST(DetlintRules, D2FiresOnEveryEntropySource) {
  const LintResult r = lint_fixture("src/d2_entropy.cpp");
  const auto d2 = by_rule(r, "D2");
  // srand, time(nullptr), random_device, system_clock::now, rand.
  EXPECT_EQ(d2.size(), 5u);
}

TEST(DetlintRules, D2SkipsBenchPaths) {
  const FileScan scan =
      scan_source("bench/b.cpp", "auto r = rand();\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  EXPECT_TRUE(by_rule({findings, {}}, "D2").empty());
}

TEST(DetlintRules, D3FiresOnThreadId) {
  const LintResult r = lint_fixture("src/d3_thread_id.cpp");
  ASSERT_EQ(by_rule(r, "D3").size(), 1u);
}

TEST(DetlintRules, D4FiresOnPointerKeyOnly) {
  const LintResult r = lint_fixture("src/d4_pointer_key.cpp");
  const auto d4 = by_rule(r, "D4");
  ASSERT_EQ(d4.size(), 1u);
  EXPECT_EQ(d4[0]->line, 10);
}

TEST(DetlintRules, D5FiresOnUnorderedAccumulationOnly) {
  const LintResult r = lint_fixture("src/measure/d5_fp_accum.cpp");
  const auto d5 = by_rule(r, "D5");
  ASSERT_EQ(d5.size(), 1u);
  EXPECT_EQ(d5[0]->line, 11);
}

TEST(DetlintRules, D5ScopedToMeasure) {
  const FileScan scan = scan_source(
      "src/x.cpp",
      "std::unordered_map<int, double> m;\n"
      "double s = 0;\n"
      "void f() { for (auto& kv : m) s += kv.second; }\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  EXPECT_TRUE(by_rule({findings, {}}, "D5").empty());
}

TEST(DetlintRules, D6FiresOnGuardHeldAcrossSubmit) {
  const LintResult r = lint_fixture("src/d6_lock_submit.cpp");
  const auto d6 = by_rule(r, "D6");
  ASSERT_EQ(d6.size(), 1u);
  EXPECT_EQ(d6[0]->line, 13);
}

TEST(DetlintRules, D7FiresOnDefaultConstructedRng) {
  const LintResult r = lint_fixture("src/d7_default_rng.cpp");
  const auto d7 = by_rule(r, "D7");
  // `Rng unseeded;` and the `Rng()` temporary; the `Rng() = default;`
  // declaration and the seeded constructions stay clean.
  ASSERT_EQ(d7.size(), 2u);
  EXPECT_EQ(d7[0]->line, 10);
  EXPECT_EQ(d7[1]->line, 12);
}

TEST(DetlintRules, D8FiresOnDeterminismDebtOnly) {
  const LintResult r = lint_fixture("src/d8_todo.cpp");
  const auto d8 = by_rule(r, "D8");
  ASSERT_EQ(d8.size(), 1u);
  EXPECT_EQ(d8[0]->line, 4);
  EXPECT_EQ(d8[0]->severity, Severity::kWarning);
}

TEST(DetlintRules, D9FlagsDefaultCaptureOnlyInShardPinnedSchedules) {
  const LintResult r = lint_fixture("src/d9_cross_shard.cpp");
  const auto d9 = by_rule(r, "D9");
  // [&] and [&, slot] in three-arg calls fire; explicit captures
  // ([&local], [slot]) and the two-arg shard-local call do not.
  ASSERT_EQ(d9.size(), 2u);
  EXPECT_EQ(d9[0]->line, 5);
  EXPECT_EQ(d9[1]->line, 7);
}

TEST(DetlintRules, D9IgnoresNestedCommasWhenCountingArguments) {
  // The capture list's own comma and commas inside nested parens must
  // not promote a two-argument call into the pinned overload.
  const FileScan scan = scan_source(
      "src/x.cpp",
      "void f(Sim& sim, int a, int b) {\n"
      "  sim.schedule_in(delay(a, b), [&, a] { g(a); });\n"
      "}\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  EXPECT_TRUE(by_rule(LintResult{findings, {}}, "D9").empty());
}

TEST(DetlintRules, D10FlagsUnsafeCapturesInSpeculativeSchedules) {
  const LintResult r = lint_fixture("src/d10_speculative.cpp");
  const auto d10 = by_rule(r, "D10");
  // [&], [=] and [this, &local] in kShardLocal calls fire; the
  // by-value kShardLocal capture, the kGlobal call, and the two-arg
  // call without a locality token stay clean.
  ASSERT_EQ(d10.size(), 3u);
  EXPECT_EQ(d10[0]->line, 5);
  EXPECT_EQ(d10[1]->line, 6);
  EXPECT_EQ(d10[2]->line, 7);
}

TEST(DetlintRules, D10AllowsValueInitCapturesAndNestedBrackets) {
  // A by-value init-capture's `=` is not a default capture, and a
  // subscript inside an earlier argument must not be mistaken for a
  // capture list.
  const FileScan scan = scan_source(
      "src/x.cpp",
      "void f(Sim& sim, int a, int b) {\n"
      "  sim.schedule_at(t[a], s, Locality::kShardLocal,\n"
      "                  [p = g(a, b)] { h(p); });\n"
      "}\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  EXPECT_TRUE(by_rule(LintResult{findings, {}}, "D10").empty());
}

TEST(DetlintRules, S1FiresOnHeaderWithoutPragmaOnce) {
  const LintResult r = lint_fixture("src/s1_missing_pragma.h");
  const auto s1 = by_rule(r, "S1");
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0]->line, 1);
}

TEST(DetlintRules, S2FiresOnIncludeHygiene) {
  const LintResult r = lint_fixture("src/s2_includes.cpp");
  const auto s2 = by_rule(r, "S2");
  // parent-relative, <bits/...>, duplicate <vector>.
  ASSERT_EQ(s2.size(), 3u);
}

TEST(DetlintRules, S3FiresOnEveryMalformedMarker) {
  const LintResult r = lint_fixture("src/s3_bad_suppress.cpp");
  EXPECT_EQ(by_rule(r, "S3").size(), 3u);
  // Malformed markers shield nothing: the D1 findings stay live.
  for (const Finding* f : by_rule(r, "D1")) {
    EXPECT_FALSE(f->suppressed);
  }
  EXPECT_TRUE(r.suppressions.empty());
}

TEST(DetlintRules, CleanFixtureIsClean) {
  const LintResult r = lint_fixture("src/clean_ok.cpp");
  EXPECT_EQ(unsuppressed_count(r), 0);
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_TRUE(r.suppressions[0].used);
}

// --------------------------------------------------------- suppressions

TEST(Suppressions, TrailingMarkerCoversItsOwnLine) {
  const FileScan scan = scan_source(
      "src/x.cpp",
      "std::unordered_map<int, int> m;  // det-ok(D1): probe only\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  auto sups = collect_suppressions(scan);
  apply_suppressions(sups, findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].reason, "probe only");
}

TEST(Suppressions, OwnLineMarkerCoversNextLine) {
  const FileScan scan =
      scan_source("src/x.cpp",
                  "// det-ok(D1): probe only\n"
                  "std::unordered_map<int, int> m;\n"
                  "std::unordered_map<int, int> n;\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  auto sups = collect_suppressions(scan);
  apply_suppressions(sups, findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_FALSE(findings[1].suppressed);
}

TEST(Suppressions, CommaListCoversMultipleRules) {
  const FileScan scan = scan_source(
      "src/x.cpp",
      "// det-ok(D1, D4): keyed probe by stable address\n"
      "std::unordered_map<int*, int> m;\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  auto sups = collect_suppressions(scan);
  apply_suppressions(sups, findings);
  ASSERT_EQ(sups.size(), 2u);
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.suppressed) << f.rule;
  }
}

TEST(Suppressions, S3IsNeverSuppressible) {
  const FileScan scan = scan_source(
      "src/x.cpp",
      "// det-ok(S3): trying to silence the syntax check\n"
      "// det-ok(D1) broken marker\n"
      "int x = 1;\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  auto sups = collect_suppressions(scan);
  apply_suppressions(sups, findings);
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [](const Finding& f) { return f.rule == "S3"; });
  ASSERT_NE(it, findings.end());
  EXPECT_FALSE(it->suppressed);
}

TEST(Suppressions, UnusedMarkerIsTracked) {
  const FileScan scan = scan_source(
      "src/x.cpp", "int x = 1;  // det-ok(D1): nothing to shield\n");
  std::vector<Finding> findings;
  run_rules(scan, all_rules(), findings);
  auto sups = collect_suppressions(scan);
  apply_suppressions(sups, findings);
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_FALSE(sups[0].used);
  EXPECT_EQ(sups[0].file, "src/x.cpp");
}

// --------------------------------------------------------------- report

TEST(Report, JsonSchemaAndCounts) {
  const LintResult r = lint_fixture("src/clean_ok.cpp");
  Report report;
  report.findings = r.findings;
  report.files_scanned = 1;
  for (const Suppression& s : r.suppressions) {
    report.suppression_total += 1;
    if (s.used) report.suppression_used += 1;
  }
  const std::string json = render_json(report);
  const auto doc = propsim::Json::parse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->as_string(), "propsim.lint");
  EXPECT_EQ(doc->find("version")->as_double(), 1.0);
  EXPECT_EQ(doc->find("summary")->find("errors")->as_double(), 0.0);
  EXPECT_EQ(doc->find("findings")->size(), report.findings.size());
  EXPECT_EQ(doc->find("suppressions")->find("used")->as_double(), 1.0);
}

TEST(Report, RegistryFindsRulesByIdAndName) {
  register_builtin_rules();
  const RuleRegistry& reg = RuleRegistry::instance();
  EXPECT_EQ(reg.rules().size(), 13u);
  EXPECT_NE(reg.find("D1"), nullptr);
  EXPECT_EQ(reg.find("D1"), reg.find("unordered-iteration"));
  EXPECT_EQ(reg.find("nope"), nullptr);
}

}  // namespace
