// Statistical property suite for the topology and overlay generators —
// parameterized sweeps asserting the distributional features the
// simulation results depend on (latency mix, degree profiles, balance).
#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "can/can_space.h"
#include "common/rng.h"
#include "common/stats.h"
#include "fixtures.h"
#include "gnutella/gnutella.h"
#include "topology/latency_oracle.h"
#include "topology/random_graphs.h"
#include "topology/transit_stub.h"

namespace propsim {
namespace {

// ---------------------------------------------- transit-stub structure ----

class TransitStubSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(TransitStubSweep, StructureInvariantsAcrossShapes) {
  const auto [domains, per_stub] = GetParam();
  TransitStubConfig c;
  c.transit_domains = domains;
  c.transit_nodes_per_domain = 3;
  c.stub_domains_per_transit = 2;
  c.nodes_per_stub = per_stub;
  Rng rng(1000 + domains * 10 + per_stub);
  const auto topo = make_transit_stub(c, rng);

  EXPECT_TRUE(topo.graph.is_connected());
  EXPECT_EQ(topo.graph.node_count(), c.total_nodes());
  EXPECT_EQ(topo.transit_nodes.size(),
            c.transit_domains * c.transit_nodes_per_domain);
  EXPECT_EQ(topo.stub_domain_count,
            topo.transit_nodes.size() * c.stub_domains_per_transit);

  // Every stub domain hangs off exactly one transit uplink: stub-transit
  // edge count == stub domain count.
  std::size_t uplinks = 0;
  for (const NodeId t : topo.transit_nodes) {
    for (const Graph::Edge& e : topo.graph.neighbors(t)) {
      if (topo.kind[e.to] == NodeKind::kStub) ++uplinks;
    }
  }
  EXPECT_EQ(uplinks, topo.stub_domain_count);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransitStubSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{6}),
                       ::testing::Values(std::size_t{4}, std::size_t{16},
                                         std::size_t{48})),
    [](const auto& info) {
      std::string name = "domains";
      name += std::to_string(std::get<0>(info.param));
      name += "_stub";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

TEST(TransitStubLatencies, IntraStubBeatsCrossDomain) {
  // The latency hierarchy the whole paper rests on: two nodes of the
  // same stub domain are much closer than nodes in different transit
  // domains.
  Rng rng(2);
  const auto topo = make_transit_stub(TransitStubConfig::ts_large(), rng);
  LatencyOracle oracle(topo.graph);
  RunningStats same_stub;
  RunningStats cross_domain;
  Rng pick(3);
  for (int i = 0; i < 400; ++i) {
    const NodeId a = topo.stub_nodes[static_cast<std::size_t>(
        pick.uniform(topo.stub_nodes.size()))];
    const NodeId b = topo.stub_nodes[static_cast<std::size_t>(
        pick.uniform(topo.stub_nodes.size()))];
    if (a == b) continue;
    if (topo.domain[a] == topo.domain[b]) {
      same_stub.add(oracle.latency(a, b));
    } else {
      cross_domain.add(oracle.latency(a, b));
    }
  }
  // Cross-domain pairs dominate a random sample; synthesize same-stub
  // pairs directly if the sample missed them.
  if (same_stub.count() < 10) {
    for (const NodeId a : topo.stub_nodes) {
      for (const Graph::Edge& e : topo.graph.neighbors(a)) {
        if (topo.kind[e.to] == NodeKind::kStub &&
            topo.domain[a] == topo.domain[e.to]) {
          same_stub.add(oracle.latency(a, e.to));
        }
      }
      if (same_stub.count() > 200) break;
    }
  }
  ASSERT_GT(same_stub.count(), 9u);
  ASSERT_GT(cross_domain.count(), 50u);
  EXPECT_LT(same_stub.mean() * 3.0, cross_domain.mean());
}

// --------------------------------------------------- degree profiles ----

class PreferentialSweep : public ::testing::TestWithParam<double> {};

TEST_P(PreferentialSweep, TailGrowsWithPreferentialShare) {
  const double share = GetParam();
  auto topo_rng = Rng(4);
  const auto topo =
      make_transit_stub(testing::tiny_transit_stub_config(), topo_rng);
  LatencyOracle oracle(topo.graph);
  Rng rng(5);
  std::vector<NodeId> hosts;
  const auto idx = rng.sample_indices(topo.stub_nodes.size(), 90);
  for (const auto i : idx) hosts.push_back(topo.stub_nodes[i]);

  GnutellaConfig cfg;
  cfg.attach_links = 3;
  cfg.preferential_fraction = share;
  const OverlayNetwork net =
      build_gnutella_overlay(cfg, hosts, oracle, rng);
  EXPECT_EQ(net.graph().min_active_degree(), 3u);
  EXPECT_TRUE(net.graph().active_subgraph_connected());
  // Mean degree is fixed by construction (~2 * attach); only the tail
  // moves with the preferential share.
  EXPECT_NEAR(net.graph().average_active_degree(), 6.0, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Shares, PreferentialSweep,
                         ::testing::Values(0.0, 0.5, 0.9),
                         [](const auto& info) {
                           return "share" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

TEST(PreferentialTail, HigherShareFattensTheTail) {
  auto max_degree_for = [](double share) {
    auto topo_rng = Rng(6);
    const auto topo =
        make_transit_stub(testing::tiny_transit_stub_config(), topo_rng);
    LatencyOracle oracle(topo.graph);
    Rng rng(7);
    std::vector<NodeId> hosts;
    const auto idx = rng.sample_indices(topo.stub_nodes.size(), 90);
    for (const auto i : idx) hosts.push_back(topo.stub_nodes[i]);
    GnutellaConfig cfg;
    cfg.attach_links = 3;
    cfg.preferential_fraction = share;
    const OverlayNetwork net =
        build_gnutella_overlay(cfg, hosts, oracle, rng);
    std::size_t max_deg = 0;
    for (const SlotId s : net.graph().active_slots()) {
      max_deg = std::max(max_deg, net.graph().degree(s));
    }
    return max_deg;
  };
  EXPECT_GT(max_degree_for(0.9), max_degree_for(0.0));
}

// -------------------------------------------------------- CAN balance ----

TEST(CanBalance, ZoneVolumesStayWithinPolylogSpread) {
  Rng rng(8);
  const auto space = CanSpace::build(256, rng);
  double lo = 1.0;
  double hi = 0.0;
  for (SlotId s = 0; s < space.size(); ++s) {
    const double v = space.zone(s).volume_fraction();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Random-point splitting keeps the max/min volume ratio polylog-ish;
  // 64x is a generous cap that catches broken splitting immediately.
  EXPECT_LT(hi / lo, 64.0);
  // Average degree in 2-d CAN is small and bounded.
  const LogicalGraph g = space.to_logical_graph();
  EXPECT_GT(g.average_active_degree(), 3.0);
  EXPECT_LT(g.average_active_degree(), 10.0);
}

// ------------------------------------------------------ Waxman sweep ----

class WaxmanSweep : public ::testing::TestWithParam<double> {};

TEST_P(WaxmanSweep, DensityGrowsWithBeta) {
  const double beta = GetParam();
  Rng rng(9);
  const Graph g = make_waxman_graph(150, 0.3, beta, 100.0, 1.0, rng);
  EXPECT_TRUE(g.is_connected());
  // Expected edges scale roughly linearly in beta; assert the ordering
  // through a density floor/ceiling per beta value.
  const double density =
      static_cast<double>(g.edge_count()) / static_cast<double>(150);
  if (beta <= 0.11) {
    EXPECT_LT(density, 4.0);
  } else {
    EXPECT_GT(density, 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, WaxmanSweep, ::testing::Values(0.1, 0.6),
                         [](const auto& info) {
                           return "beta" +
                                  std::to_string(static_cast<int>(
                                      info.param * 10));
                         });

}  // namespace
}  // namespace propsim
