// End-to-end mini-experiments: scaled-down versions of the paper's
// figures asserting the qualitative claims (who improves, what is
// preserved), so regressions in any module surface here.
#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/ltm.h"
#include "baselines/pis.h"
#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "core/prop_engine.h"
#include "sim/simulator.h"
#include "fixtures.h"
#include "metrics/convergence.h"
#include "metrics/metrics.h"
#include "workload/churn.h"
#include "workload/heterogeneity.h"
#include "workload/host_selection.h"
#include "workload/lookups.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

PropParams quick_prop(PropMode mode) {
  PropParams p;
  p.mode = mode;
  p.init_timer_s = 10.0;
  p.max_init_trial = 8;
  return p;
}

// Figure 5 in miniature: PROP-G cuts unstructured lookup latency over
// time, and the improvement is monotone-ish (final < initial).
TEST(Integration, PropGImprovesGnutellaLookupLatency) {
  auto fx = UnstructuredFixture::make(80, 7001);
  Rng qrng(1);
  const auto queries = uniform_queries(fx.net.graph(), 400, qrng);
  const double before =
      average_unstructured_lookup_latency(fx.net, queries);

  Simulator sim;
  PropEngine engine(fx.net, sim, quick_prop(PropMode::kPropG), 2);
  ConvergenceSampler sampler(sim, "lookup", 0.0, 2000.0, 200.0, [&] {
    return average_unstructured_lookup_latency(fx.net, queries);
  });
  engine.start();
  sim.run_until(2000.0);

  const double after = average_unstructured_lookup_latency(fx.net, queries);
  EXPECT_LT(after, before * 0.9);
  EXPECT_LE(sampler.series().last_value(), sampler.series().first_value());
}

// Figure 6 in miniature: PROP-G cuts Chord lookup stretch.
TEST(Integration, PropGImprovesChordStretch) {
  Rng rng(7002);
  const auto topo =
      make_transit_stub(testing::tiny_transit_stub_config(), rng);
  LatencyOracle oracle(topo.graph);
  const auto hosts = select_stub_hosts(topo, 64, rng);
  const auto ring = ChordRing::build_random(64, ChordConfig{}, rng);
  OverlayNetwork net = make_chord_overlay(ring, hosts, oracle);

  Rng qrng(2);
  const auto queries = sample_query_pairs(net.graph(), 300, qrng);
  const auto router = chord_router(net, ring);
  const double before = stretch(net, queries, router).stretch;

  Simulator sim;
  PropEngine engine(net, sim, quick_prop(PropMode::kPropG), 3);
  engine.start();
  sim.run_until(2500.0);
  const double after = stretch(net, queries, router).stretch;
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_LT(after, before);
  EXPECT_GT(after, 1.0);  // routed latency can never beat direct
}

// PROP-G on CAN: same generic mechanism, third substrate.
TEST(Integration, PropGImprovesCanRouting) {
  Rng rng(7003);
  const auto topo =
      make_transit_stub(testing::tiny_transit_stub_config(), rng);
  LatencyOracle oracle(topo.graph);
  const auto hosts = select_stub_hosts(topo, 48, rng);
  const auto space = CanSpace::build(48, rng);
  OverlayNetwork net = make_can_overlay(space, hosts, oracle);

  Rng qrng(3);
  auto avg_route = [&] {
    Rng r(11);
    double sum = 0.0;
    const int q = 200;
    for (int i = 0; i < q; ++i) {
      const SlotId src = static_cast<SlotId>(r.uniform(48));
      CanPoint target{r.uniform(kCanSpan), r.uniform(kCanSpan)};
      const auto path = space.route_path(src, target);
      sum += path_latency(net, path);
    }
    return sum / q;
  };

  const double before = avg_route();
  Simulator sim;
  PropEngine engine(net, sim, quick_prop(PropMode::kPropG), 4);
  engine.start();
  sim.run_until(2500.0);
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_LT(avg_route(), before);
}

// Figure 7's key contrast in miniature: under bimodal heterogeneity with
// fast-destined lookups, PROP-O (degree-preserving) beats LTM (which
// redistributes the fast hubs' connections).
TEST(Integration, PropOBeatsLtmForFastDestinedLookups) {
  const std::uint64_t seed = 7004;
  BimodalConfig bcfg;

  auto run = [&](auto&& optimize) {
    auto fx = UnstructuredFixture::make(80, seed);
    Rng hrng(5);
    // Fast nodes are the high-degree hubs (the paper's correlation of
    // capability with connection count). Delays follow the hosts, so a
    // post-optimization slot view is materialized for measurement.
    const auto delays = make_bimodal_delays_by_degree(fx.net, bcfg, hrng);
    optimize(fx, delays);
    Rng qrng(6);
    const auto fast = delays.slot_fast(fx.net);
    const auto proc = delays.slot_delays(fx.net);
    const auto queries = biased_queries(fx.net.graph(), fast, 0.9, 400, qrng);
    return average_unstructured_lookup_latency(fx.net, queries, &proc);
  };

  const double prop_o = run([](UnstructuredFixture& fx,
                               const BimodalDelays&) {
    Simulator sim;
    PropEngine engine(fx.net, sim, quick_prop(PropMode::kPropO), 7);
    engine.start();
    sim.run_until(2500.0);
  });
  const double ltm = run([](UnstructuredFixture& fx, const BimodalDelays&) {
    Simulator sim;
    LtmParams params;
    params.interval_s = 10.0;
    LtmEngine engine(fx.net, sim, params, 8);
    engine.start();
    sim.run_until(2500.0);
  });
  EXPECT_LT(prop_o, ltm);
}

// PROP-G composes with PIS: starting from a location-aware id assignment
// still leaves room for peer exchanges to improve, and never hurts.
TEST(Integration, PropGComposesWithPis) {
  Rng rng(7005);
  const auto topo =
      make_transit_stub(testing::tiny_transit_stub_config(), rng);
  LatencyOracle oracle(topo.graph);
  const auto hosts = select_stub_hosts(topo, 64, rng);
  const auto landmarks = select_landmarks(topo, 4, rng);
  const auto ids = pis_identifiers(hosts, landmarks, oracle, rng);
  const auto ring = ChordRing::build_with_ids(ids, ChordConfig{});
  OverlayNetwork net = make_chord_overlay(ring, hosts, oracle);

  Rng qrng(9);
  const auto queries = sample_query_pairs(net.graph(), 300, qrng);
  const auto router = chord_router(net, ring);
  const double before = stretch(net, queries, router).stretch;

  Simulator sim;
  PropEngine engine(net, sim, quick_prop(PropMode::kPropG), 10);
  engine.start();
  sim.run_until(2500.0);
  const double after = stretch(net, queries, router).stretch;
  EXPECT_LE(after, before + 1e-9);
}

// Dynamics: churn perturbs the overlay; PROP keeps optimizing and the
// post-churn latency returns below the perturbed level.
TEST(Integration, PropRecoversAfterChurnBurst) {
  auto fx = UnstructuredFixture::make(60, 7006);
  Simulator sim;
  PropEngine engine(fx.net, sim, quick_prop(PropMode::kPropO), 11);
  engine.start();

  GnutellaConfig gcfg;
  ChurnParams cparams;
  cparams.join_rate_per_s = 0.2;
  cparams.leave_rate_per_s = 0.2;
  cparams.start_s = 1000.0;
  cparams.end_s = 1300.0;
  std::vector<NodeId> spares;
  for (const NodeId h : fx.topo.stub_nodes) {
    if (!fx.net.placement().host_bound(h) && spares.size() < 40) {
      spares.push_back(h);
    }
  }
  ChurnProcess churn(fx.net, sim, &engine, gcfg, cparams, spares, 12);
  churn.start();

  sim.run_until(1000.0);  // converged phase
  Rng qrng(13);
  const auto pre_queries = uniform_queries(fx.net.graph(), 300, qrng);
  const double converged =
      average_unstructured_lookup_latency(fx.net, pre_queries);

  sim.run_until(1300.0);  // churn burst over
  sim.run_until(3500.0);  // recovery window

  ASSERT_TRUE(fx.net.graph().active_subgraph_connected());
  Rng qrng2(14);
  const auto post_queries = uniform_queries(fx.net.graph(), 300, qrng2);
  const double recovered =
      average_unstructured_lookup_latency(fx.net, post_queries);
  EXPECT_GT(churn.joins() + churn.leaves(), 20u);
  // Recovery lands in the neighbourhood of the converged value.
  EXPECT_LT(recovered, converged * 1.5);
}

// Overhead shape (Section 4.3): per-adjustment control messages follow
// nhops + 2c for PROP-G vs nhops + 2m for PROP-O, so with c >> m PROP-O
// is cheaper per attempt.
TEST(Integration, PropOCheaperPerAttemptThanPropG) {
  auto measure = [](PropMode mode, std::size_t m) {
    auto fx = UnstructuredFixture::make(60, 7007, /*attach_links=*/6);
    Simulator sim;
    PropParams params;
    params.mode = mode;
    params.m = m;
    params.init_timer_s = 10.0;
    PropEngine engine(fx.net, sim, params, 15);
    engine.start();
    fx.net.traffic().reset();
    sim.run_until(500.0);
    return static_cast<double>(fx.net.traffic().control_total()) /
           static_cast<double>(engine.stats().attempts);
  };
  const double per_g = measure(PropMode::kPropG, 0);
  const double per_o = measure(PropMode::kPropO, 2);
  EXPECT_LT(per_o, per_g);
}

}  // namespace
}  // namespace propsim
