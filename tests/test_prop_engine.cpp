#include <algorithm>

#include <gtest/gtest.h>

#include "chord/chord_ring.h"
#include "core/prop_engine.h"
#include "fixtures.h"
#include "sim/simulator.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

PropParams fast_params(PropMode mode) {
  PropParams p;
  p.mode = mode;
  p.nhops = 2;
  p.init_timer_s = 10.0;
  p.max_init_trial = 5;
  return p;
}

TEST(NeighborQueueTest, InitializeCoversAllNeighbors) {
  Rng rng(1);
  const std::vector<SlotId> neigh{3, 7, 9, 12};
  NeighborQueue q;
  q.initialize(neigh, rng);
  EXPECT_EQ(q.size(), 4u);
  for (const SlotId s : neigh) EXPECT_TRUE(q.contains(s));
}

TEST(NeighborQueueTest, SuccessKeepsNeighborNearFront) {
  Rng rng(2);
  NeighborQueue q;
  q.initialize(std::vector<SlotId>{1, 2, 3}, rng);
  const SlotId first = *q.front();
  q.on_success(first);
  EXPECT_EQ(*q.front(), first);  // rank dropped below everyone else's
}

TEST(NeighborQueueTest, FailureMovesToTail) {
  Rng rng(3);
  NeighborQueue q;
  q.initialize(std::vector<SlotId>{1, 2, 3}, rng);
  const SlotId first = *q.front();
  q.on_failure(first);
  EXPECT_NE(*q.front(), first);
  // Failing everything cycles back eventually.
  q.on_failure(*q.front());
  q.on_failure(*q.front());
  EXPECT_EQ(*q.front(), first);
}

TEST(NeighborQueueTest, AddFrontGetsMaxPriority) {
  Rng rng(4);
  NeighborQueue q;
  q.initialize(std::vector<SlotId>{1, 2, 3}, rng);
  q.add_front(42);
  EXPECT_EQ(*q.front(), 42u);
}

TEST(NeighborQueueTest, RemoveAndEmpty) {
  Rng rng(5);
  NeighborQueue q;
  q.initialize(std::vector<SlotId>{1}, rng);
  q.remove(1);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.front().has_value());
  q.remove(1);  // idempotent
}

// --------------------------------------------------------- the engine ----

TEST(PropEngine, WarmUpThenMaintenance) {
  auto fx = UnstructuredFixture::make(40, 3001);
  Simulator sim;
  PropEngine engine(fx.net, sim, fast_params(PropMode::kPropG), 1);
  engine.start();
  // After enough simulated time every node has exceeded max_init_trial.
  sim.run_until(fast_params(PropMode::kPropG).init_timer_s * 20);
  for (const SlotId s : fx.net.graph().active_slots()) {
    EXPECT_TRUE(engine.in_maintenance(s));
  }
  EXPECT_GT(engine.stats().attempts, 40u * 5u);
}

TEST(PropEngine, PropGReducesAverageLogicalLinkLatency) {
  auto fx = UnstructuredFixture::make(60, 3002);
  const double before = fx.net.average_logical_link_latency();
  Simulator sim;
  PropEngine engine(fx.net, sim, fast_params(PropMode::kPropG), 2);
  engine.start();
  sim.run_until(2000.0);
  const double after = fx.net.average_logical_link_latency();
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_LT(after, before);
}

TEST(PropEngine, PropOReducesAverageLogicalLinkLatency) {
  auto fx = UnstructuredFixture::make(60, 3003);
  const double before = fx.net.average_logical_link_latency();
  const auto degrees = fx.net.graph().degree_multiset();
  Simulator sim;
  PropEngine engine(fx.net, sim, fast_params(PropMode::kPropO), 3);
  engine.start();
  sim.run_until(2000.0);
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_LT(fx.net.average_logical_link_latency(), before);
  EXPECT_EQ(fx.net.graph().degree_multiset(), degrees);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
}

TEST(PropEngine, ExchangeSizeDefaultsToMinDegree) {
  auto fx = UnstructuredFixture::make(40, 3004, /*attach_links=*/3);
  Simulator sim;
  PropParams params = fast_params(PropMode::kPropO);
  params.m = 0;
  PropEngine engine(fx.net, sim, params, 4);
  engine.start();
  EXPECT_EQ(engine.exchange_size(), 3u);
}

TEST(PropEngine, RandomTargetModeWorks) {
  auto fx = UnstructuredFixture::make(40, 3005);
  Simulator sim;
  PropParams params = fast_params(PropMode::kPropG);
  params.random_target = true;
  PropEngine engine(fx.net, sim, params, 5);
  engine.start();
  sim.run_until(1000.0);
  EXPECT_GT(engine.stats().exchanges, 0u);
}

TEST(PropEngine, BackoffGrowsTimerAfterConvergence) {
  auto fx = UnstructuredFixture::make(40, 3006);
  Simulator sim;
  PropParams params = fast_params(PropMode::kPropG);
  PropEngine engine(fx.net, sim, params, 6);
  engine.start();
  sim.run_until(8000.0);
  // Once the topology converges, failures dominate; some nodes must have
  // backed off beyond the base timer.
  std::size_t backed_off = 0;
  for (const SlotId s : fx.net.graph().active_slots()) {
    if (engine.timer_of(s) > params.init_timer_s) ++backed_off;
  }
  EXPECT_GT(backed_off, 0u);
}

TEST(PropEngine, BackoffDisabledKeepsBaseTimer) {
  auto fx = UnstructuredFixture::make(30, 3007);
  Simulator sim;
  PropParams params = fast_params(PropMode::kPropG);
  params.use_backoff = false;
  PropEngine engine(fx.net, sim, params, 7);
  engine.start();
  sim.run_until(3000.0);
  for (const SlotId s : fx.net.graph().active_slots()) {
    EXPECT_DOUBLE_EQ(engine.timer_of(s), params.init_timer_s);
  }
}

TEST(PropEngine, BackoffNeverExceedsMaxTimer) {
  auto fx = UnstructuredFixture::make(30, 3008);
  Simulator sim;
  PropParams params = fast_params(PropMode::kPropG);
  PropEngine engine(fx.net, sim, params, 8);
  engine.start();
  sim.run_until(20000.0);
  for (const SlotId s : fx.net.graph().active_slots()) {
    EXPECT_LE(engine.timer_of(s), params.max_timer_s());
  }
}

TEST(PropEngine, ManualAttemptOnNewEngine) {
  auto fx = UnstructuredFixture::make(30, 3009);
  Simulator sim;
  PropEngine engine(fx.net, sim, fast_params(PropMode::kPropG), 9);
  engine.start();
  std::uint64_t before = engine.stats().attempts;
  engine.attempt(0);
  EXPECT_EQ(engine.stats().attempts, before + 1);
}

TEST(PropEngine, StatsAccounting) {
  auto fx = UnstructuredFixture::make(40, 3010);
  Simulator sim;
  PropEngine engine(fx.net, sim, fast_params(PropMode::kPropG), 10);
  engine.start();
  sim.run_until(1500.0);
  const auto& s = engine.stats();
  EXPECT_EQ(s.planned, s.exchanges + s.rejected);
  EXPECT_LE(s.planned + s.walk_failures, s.attempts);
  EXPECT_GT(s.total_var_gain, 0.0);
  EXPECT_GT(s.last_exchange_time, 0.0);
}

TEST(PropEngine, TrafficChargedPerAttempt) {
  auto fx = UnstructuredFixture::make(40, 3011);
  Simulator sim;
  PropEngine engine(fx.net, sim, fast_params(PropMode::kPropG), 11);
  engine.start();
  fx.net.traffic().reset();
  sim.run_until(500.0);
  EXPECT_GT(fx.net.traffic().by_kind(MessageKind::kWalk), 0u);
  EXPECT_GT(fx.net.traffic().by_kind(MessageKind::kProbe), 0u);
  if (engine.stats().exchanges > 0) {
    EXPECT_GT(fx.net.traffic().by_kind(MessageKind::kNotify), 0u);
    EXPECT_GT(fx.net.traffic().by_kind(MessageKind::kExchangeCtrl), 0u);
  }
}

TEST(PropEngine, ChurnHooksMaintainState) {
  auto fx = UnstructuredFixture::make(40, 3012);
  Simulator sim;
  PropEngine engine(fx.net, sim, fast_params(PropMode::kPropO), 12);
  engine.start();
  sim.run_until(100.0);

  // Simulate a departure.
  const SlotId victim = fx.net.graph().active_slots()[5];
  const auto neigh = fx.net.graph().neighbors(victim);
  const std::vector<SlotId> former(neigh.begin(), neigh.end());
  fx.net.graph().deactivate_slot(victim);
  engine.node_left(victim, former);
  for (const SlotId nb : former) {
    EXPECT_FALSE(engine.queue_of(nb).contains(victim));
    EXPECT_DOUBLE_EQ(engine.timer_of(nb),
                     fast_params(PropMode::kPropO).init_timer_s);
  }

  // Simulate a (re)join wiring the slot to two peers.
  fx.net.graph().reactivate_slot(victim);
  const auto actives = fx.net.graph().active_slots();
  std::vector<SlotId> new_neigh;
  for (const SlotId s : actives) {
    if (s != victim && new_neigh.size() < 2) new_neigh.push_back(s);
  }
  for (const SlotId nb : new_neigh) fx.net.graph().add_edge(victim, nb);
  engine.node_joined(victim, new_neigh);
  for (const SlotId nb : new_neigh) {
    EXPECT_TRUE(engine.queue_of(nb).contains(victim));
    // The fresh neighbor enters with maximum priority.
    EXPECT_EQ(*engine.queue_of(nb).front(), victim);
  }
  // The engine keeps running without tripping checks.
  sim.run_until(500.0);
}

TEST(PropEngine, MessageDelaysStillConverge) {
  auto fx = UnstructuredFixture::make(60, 3020);
  const double before = fx.net.average_logical_link_latency();
  const auto degrees = fx.net.graph().degree_multiset();
  Simulator sim;
  PropParams params = fast_params(PropMode::kPropO);
  params.model_message_delays = true;
  PropEngine engine(fx.net, sim, params, 20);
  engine.start();
  sim.run_until(3000.0);
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_LT(fx.net.average_logical_link_latency(), before);
  EXPECT_EQ(fx.net.graph().degree_multiset(), degrees);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
  EXPECT_TRUE(fx.net.placement().validate());
}

TEST(PropEngine, MessageDelaysDetectConflicts) {
  // Small, dense overlay with aggressive probing maximizes the chance
  // that two in-flight exchanges overlap and one is invalidated.
  auto fx = UnstructuredFixture::make(24, 3021, /*attach_links=*/5);
  Simulator sim;
  PropParams params = fast_params(PropMode::kPropO);
  params.model_message_delays = true;
  params.init_timer_s = 0.5;  // negotiation RTTs now overlap probes
  params.use_backoff = false;
  PropEngine engine(fx.net, sim, params, 21);
  engine.start();
  sim.run_until(600.0);
  // Accounting stays coherent whether or not conflicts occurred, and
  // with sub-second probing over seconds-long negotiations some must.
  EXPECT_GT(engine.stats().attempts, 1000u);
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
}

TEST(PropEngine, MessageDelaysWorkWithPropGAndChurnHooks) {
  auto fx = UnstructuredFixture::make(40, 3022);
  Simulator sim;
  PropParams params = fast_params(PropMode::kPropG);
  params.model_message_delays = true;
  PropEngine engine(fx.net, sim, params, 22);
  engine.start();
  sim.run_until(200.0);
  // A departure mid-flight: pending commits touching the victim must
  // resolve as conflicts, not crashes.
  const SlotId victim = fx.net.graph().active_slots()[3];
  const auto neigh = fx.net.graph().neighbors(victim);
  const std::vector<SlotId> former(neigh.begin(), neigh.end());
  fx.net.graph().deactivate_slot(victim);
  engine.node_left(victim, former);
  sim.run_until(2000.0);
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_TRUE(fx.net.placement().validate());
}

TEST(PropEngine, DelayedCommitInvalidatedByDepartureKeepsQueuesClean) {
  // Deterministic commit-conflict: one negotiation is put in flight,
  // then churn removes the counterpart before the commit lands. The
  // exchange must abort as a conflict and every survivor's neighbor
  // queue must still mirror its graph neighborhood exactly.
  auto fx = UnstructuredFixture::make(30, 3030);
  Simulator sim;
  PropParams params = fast_params(PropMode::kPropO);
  params.model_message_delays = true;
  params.init_timer_s = 1e6;  // no autonomous probes interfere
  PropEngine engine(fx.net, sim, params, 25);
  engine.start();

  // Drive attempts until one negotiation is actually in flight (walks
  // can fail or plans can miss MIN_VAR; none commits synchronously when
  // delays are modeled).
  const auto slots = fx.net.graph().active_slots();
  SlotId initiator = kInvalidSlot;
  for (const SlotId u : slots) {
    const std::uint64_t before = engine.stats().planned;
    engine.attempt(u);
    if (engine.stats().planned > before) {
      initiator = u;
      break;
    }
  }
  ASSERT_NE(initiator, kInvalidSlot);
  ASSERT_EQ(engine.stats().exchanges, 0u);

  // Every potential counterpart departs before the commit round-trip
  // lands: the pending exchange must resolve as a conflict, never as a
  // commit, and no survivor may keep a dead neighbor queued.
  for (const SlotId v : slots) {
    if (v == initiator || !fx.net.graph().is_active(v)) continue;
    const auto neigh = fx.net.graph().neighbors(v);
    const std::vector<SlotId> former(neigh.begin(), neigh.end());
    fx.net.graph().deactivate_slot(v);
    engine.node_left(v, former);
  }
  sim.run_until(1e7);

  EXPECT_EQ(engine.stats().exchanges, 0u);
  EXPECT_GT(engine.stats().commit_conflicts, 0u);
  // Queue integrity: every active slot's queue holds exactly its active
  // graph neighbors — no stale entries from the aborted exchange, no
  // missing ones.
  for (const SlotId s : fx.net.graph().active_slots()) {
    const auto neigh = fx.net.graph().neighbors(s);
    EXPECT_EQ(engine.queue_of(s).size(), neigh.size());
    for (const SlotId v : neigh) {
      EXPECT_TRUE(engine.queue_of(s).contains(v))
          << "slot " << s << " queue lost neighbor " << v;
    }
  }
}

TEST(PropEngine, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    auto fx = UnstructuredFixture::make(40, 3013);
    Simulator sim;
    PropEngine engine(fx.net, sim, fast_params(PropMode::kPropG), seed);
    engine.start();
    sim.run_until(1000.0);
    return std::pair{engine.stats().exchanges,
                     fx.net.average_logical_link_latency()};
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

// PROP-G over a Chord overlay: stretch of lookups improves and the ring
// structure is untouched.
TEST(PropEngine, PropGOnChordImprovesLookupLatency) {
  Rng rng(3014);
  const auto topo =
      make_transit_stub(testing::tiny_transit_stub_config(), rng);
  LatencyOracle oracle(topo.graph);
  const auto ring = ChordRing::build_random(48, ChordConfig{}, rng);
  const auto host_idx = rng.sample_indices(topo.stub_nodes.size(), 48);
  std::vector<NodeId> hosts;
  for (const auto i : host_idx) hosts.push_back(topo.stub_nodes[i]);
  OverlayNetwork net = make_chord_overlay(ring, hosts, oracle);

  auto avg_lookup = [&] {
    Rng qrng(1);
    double sum = 0.0;
    const int q = 200;
    for (int i = 0; i < q; ++i) {
      const SlotId src = static_cast<SlotId>(qrng.uniform(48));
      SlotId dst;
      do {
        dst = static_cast<SlotId>(qrng.uniform(48));
      } while (dst == src);
      const auto path = ring.lookup_path(src, ring.id_of(dst));
      sum += path_latency(net, path);
    }
    return sum / q;
  };

  const double before = avg_lookup();
  Simulator sim;
  PropEngine engine(net, sim, fast_params(PropMode::kPropG), 15);
  engine.start();
  sim.run_until(3000.0);
  const double after = avg_lookup();
  EXPECT_GT(engine.stats().exchanges, 0u);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace propsim
