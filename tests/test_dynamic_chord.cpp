#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "chord/dynamic_chord.h"
#include "common/rng.h"

namespace propsim {
namespace {

DynamicChord grow_ring(std::size_t n, Rng& rng,
                       std::size_t stabilize_per_join = 2) {
  DynamicChord chord((DynamicChordConfig()));
  std::set<ChordId> used;
  auto fresh_id = [&] {
    ChordId id;
    do {
      id = rng.next();
    } while (!used.insert(id).second);
    return id;
  };
  const SlotId first = chord.bootstrap(fresh_id());
  std::vector<SlotId> members{first};
  while (chord.active_count() < n) {
    const SlotId gateway = members[static_cast<std::size_t>(
        rng.uniform(members.size()))];
    members.push_back(chord.join(fresh_id(), gateway));
    chord.stabilize_all(stabilize_per_join);
  }
  return chord;
}

TEST(DynamicChord, BootstrapSingleton) {
  DynamicChord chord((DynamicChordConfig()));
  const SlotId s = chord.bootstrap(42);
  EXPECT_EQ(chord.active_count(), 1u);
  EXPECT_EQ(chord.successor(s), s);
  const auto res = chord.lookup(s, 777);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.path.back(), s);
  EXPECT_TRUE(chord.ring_consistent());
}

TEST(DynamicChord, JoinsConvergeToConsistentRing) {
  Rng rng(1);
  const auto chord = grow_ring(40, rng);
  EXPECT_EQ(chord.active_count(), 40u);
  EXPECT_TRUE(chord.ring_consistent());
}

TEST(DynamicChord, LookupsCorrectAfterStabilization) {
  Rng rng(2);
  auto chord = grow_ring(48, rng);
  chord.stabilize_all(3);
  Rng qrng(3);
  for (int i = 0; i < 300; ++i) {
    SlotId src;
    do {
      src = static_cast<SlotId>(qrng.uniform(chord.slot_count()));
    } while (!chord.is_active(src));
    const ChordId key = qrng.next();
    const auto res = chord.lookup(src, key);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.path.back(), chord.true_owner(key));
  }
}

TEST(DynamicChord, LookupHopsLogarithmicWithFixedFingers) {
  Rng rng(4);
  auto chord = grow_ring(128, rng);
  chord.stabilize_all(3);
  Rng qrng(5);
  double total = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    SlotId src;
    do {
      src = static_cast<SlotId>(qrng.uniform(chord.slot_count()));
    } while (!chord.is_active(src));
    const auto res = chord.lookup(src, qrng.next());
    ASSERT_TRUE(res.ok);
    total += static_cast<double>(res.path.size() - 1);
  }
  EXPECT_LE(total / trials, 10.0);
}

TEST(DynamicChord, GracefulLeaveKeepsRing) {
  Rng rng(6);
  auto chord = grow_ring(30, rng);
  Rng pick(7);
  for (int i = 0; i < 10; ++i) {
    SlotId victim;
    do {
      victim = static_cast<SlotId>(pick.uniform(chord.slot_count()));
    } while (!chord.is_active(victim));
    chord.leave(victim);
    chord.stabilize_all(2);
  }
  EXPECT_EQ(chord.active_count(), 20u);
  EXPECT_TRUE(chord.ring_consistent());
}

TEST(DynamicChord, CrashRepairedByStabilization) {
  Rng rng(8);
  auto chord = grow_ring(40, rng);
  chord.stabilize_all(2);
  Rng pick(9);
  // Crash 8 nodes (no two adjacent wipes a successor list only if 4+
  // consecutive die; with list size 4 and random picks this is rare).
  for (int i = 0; i < 8; ++i) {
    SlotId victim;
    do {
      victim = static_cast<SlotId>(pick.uniform(chord.slot_count()));
    } while (!chord.is_active(victim));
    chord.fail(victim);
  }
  chord.stabilize_all(4);
  EXPECT_EQ(chord.active_count(), 32u);
  EXPECT_TRUE(chord.ring_consistent());
  Rng qrng(10);
  for (int i = 0; i < 100; ++i) {
    SlotId src;
    do {
      src = static_cast<SlotId>(qrng.uniform(chord.slot_count()));
    } while (!chord.is_active(src));
    const ChordId key = qrng.next();
    const auto res = chord.lookup(src, key);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.path.back(), chord.true_owner(key));
  }
}

TEST(DynamicChord, SuccessorListDepth) {
  Rng rng(11);
  auto chord = grow_ring(20, rng);
  chord.stabilize_all(3);
  for (SlotId s = 0; s < chord.slot_count(); ++s) {
    if (!chord.is_active(s)) continue;
    const auto& list = chord.successor_list(s);
    EXPECT_GE(list.size(), 1u);
    EXPECT_LE(list.size(), 4u);
    // Entries are consecutive ring successors.
    SlotId expect = chord.successor(s);
    for (const SlotId t : list) {
      EXPECT_EQ(t, expect);
      expect = chord.successor(t);
    }
  }
}

TEST(DynamicChord, PredecessorsSettle) {
  Rng rng(12);
  auto chord = grow_ring(24, rng);
  chord.stabilize_all(3);
  for (SlotId s = 0; s < chord.slot_count(); ++s) {
    if (!chord.is_active(s)) continue;
    const auto p = chord.predecessor(s);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(chord.successor(*p), s);
  }
}

TEST(DynamicChord, LogicalGraphConnected) {
  Rng rng(13);
  auto chord = grow_ring(32, rng);
  chord.stabilize_all(3);
  const LogicalGraph g = chord.to_logical_graph();
  EXPECT_EQ(g.active_count(), 32u);
  EXPECT_TRUE(g.active_subgraph_connected());
}

TEST(DynamicChord, SuccessorListWipeoutIsolatesButNeverCrashes) {
  // More simultaneous crashes than the successor list covers: the node
  // just before the dead run cannot repair on its own — mirroring real
  // Chord — but every operation must stay well-defined.
  Rng rng(17);
  auto chord = grow_ring(24, rng);
  chord.stabilize_all(3);
  ASSERT_TRUE(chord.ring_consistent());

  // Kill the 5 consecutive ring successors of node 0's position
  // (successor list length is 4).
  SlotId anchor = 0;
  while (!chord.is_active(anchor)) ++anchor;
  std::vector<SlotId> run;
  SlotId cur = chord.successor(anchor);
  for (int i = 0; i < 5; ++i) {
    run.push_back(cur);
    cur = chord.successor(cur);
  }
  for (const SlotId victim : run) chord.fail(victim);

  // The anchor's entire list is dead; lookups from it resolve against
  // its own (collapsed) view without tripping any invariant checks.
  const auto res = chord.lookup(anchor, chord.id_of(anchor) + 1);
  EXPECT_TRUE(res.ok);
  chord.stabilize_all(3);
  EXPECT_EQ(chord.active_count(), 19u);
  // Other nodes (whose lists bridge the gap partially) still function.
  SlotId other = cur;  // first survivor after the dead run
  ASSERT_TRUE(chord.is_active(other));
  const auto res2 = chord.lookup(other, chord.id_of(other) + 1);
  EXPECT_TRUE(res2.ok);
}

TEST(DynamicChord, JoinThroughEveryGatewayIsEquivalent) {
  // The gateway only seeds the first lookup; after stabilization the
  // ring is identical no matter who bootstrapped the join.
  auto build_via = [](SlotId gateway_index) {
    Rng rng(18);
    DynamicChord chord((DynamicChordConfig()));
    chord.bootstrap(111);
    chord.join(222, 0);
    chord.join(333, 0);
    chord.stabilize_all(3);
    const SlotId gateway = gateway_index % 3;
    chord.join(444, gateway);
    chord.stabilize_all(3);
    return chord.ring_consistent();
  };
  EXPECT_TRUE(build_via(0));
  EXPECT_TRUE(build_via(1));
  EXPECT_TRUE(build_via(2));
}

TEST(DynamicChord, MassiveChurnEventuallyConsistent) {
  Rng rng(14);
  auto chord = grow_ring(60, rng, /*stabilize_per_join=*/1);
  Rng pick(15);
  std::set<ChordId> used;
  // Interleave joins, leaves and crashes with minimal stabilization.
  for (int i = 0; i < 30; ++i) {
    const int op = static_cast<int>(pick.uniform(3));
    if (op == 0) {
      SlotId gateway;
      do {
        gateway = static_cast<SlotId>(pick.uniform(chord.slot_count()));
      } while (!chord.is_active(gateway));
      ChordId id;
      do {
        id = pick.next();
      } while (!used.insert(id).second);
      chord.join(id, gateway);
    } else if (chord.active_count() > 30) {
      SlotId victim;
      do {
        victim = static_cast<SlotId>(pick.uniform(chord.slot_count()));
      } while (!chord.is_active(victim));
      if (op == 1) {
        chord.leave(victim);
      } else {
        chord.fail(victim);
      }
    }
    chord.stabilize_all(1);
  }
  chord.stabilize_all(5);
  EXPECT_TRUE(chord.ring_consistent());
  Rng qrng(16);
  for (int i = 0; i < 100; ++i) {
    SlotId src;
    do {
      src = static_cast<SlotId>(qrng.uniform(chord.slot_count()));
    } while (!chord.is_active(src));
    const ChordId key = qrng.next();
    const auto res = chord.lookup(src, key);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.path.back(), chord.true_owner(key));
  }
}

}  // namespace
}  // namespace propsim
