#include <algorithm>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "core/prop_engine.h"
#include "sim/simulator.h"
#include "fixtures.h"
#include "workload/churn.h"
#include "workload/heterogeneity.h"
#include "workload/host_selection.h"
#include "workload/lookup_traffic.h"
#include "workload/lookups.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

TEST(HostSelection, DistinctStubHosts) {
  Rng rng(1);
  const auto topo =
      make_transit_stub(testing::tiny_transit_stub_config(), rng);
  const auto hosts = select_stub_hosts(topo, 30, rng);
  EXPECT_EQ(hosts.size(), 30u);
  std::set<NodeId> uniq(hosts.begin(), hosts.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const NodeId h : hosts) EXPECT_EQ(topo.kind[h], NodeKind::kStub);
}

TEST(HostSelection, SparesDisjointFromPrimary) {
  Rng rng(2);
  const auto topo =
      make_transit_stub(testing::tiny_transit_stub_config(), rng);
  const auto [hosts, spares] =
      select_stub_hosts_with_spares(topo, 20, 10, rng);
  EXPECT_EQ(hosts.size(), 20u);
  EXPECT_EQ(spares.size(), 10u);
  std::set<NodeId> all(hosts.begin(), hosts.end());
  all.insert(spares.begin(), spares.end());
  EXPECT_EQ(all.size(), 30u);
}

TEST(HostSelection, LandmarksAreTransit) {
  Rng rng(3);
  const auto topo =
      make_transit_stub(testing::tiny_transit_stub_config(), rng);
  const auto landmarks = select_landmarks(topo, 3, rng);
  for (const NodeId l : landmarks) {
    EXPECT_EQ(topo.kind[l], NodeKind::kTransit);
  }
}

TEST(Heterogeneity, BimodalFractionsRoughlyHold) {
  auto fx = UnstructuredFixture::make(80, 6010);
  Rng rng(4);
  BimodalConfig cfg;
  cfg.fast_fraction = 0.2;
  const auto delays = make_bimodal_delays(fx.net, cfg, rng);
  EXPECT_NEAR(static_cast<double>(delays.fast_count) / 80.0, 0.2, 0.12);
  const auto slot_delay = delays.slot_delays(fx.net);
  const auto slot_fast = delays.slot_fast(fx.net);
  for (std::size_t s = 0; s < slot_delay.size(); ++s) {
    EXPECT_DOUBLE_EQ(slot_delay[s],
                     slot_fast[s] ? cfg.fast_delay_ms : cfg.slow_delay_ms);
  }
}

TEST(Heterogeneity, AlwaysBothKinds) {
  auto fx = UnstructuredFixture::make(10, 6011, /*attach_links=*/3);
  Rng rng(5);
  BimodalConfig cfg;
  cfg.fast_fraction = 0.999;
  const auto delays = make_bimodal_delays(fx.net, cfg, rng);
  EXPECT_GT(delays.fast_count, 0u);
  EXPECT_LT(delays.fast_count, 10u);
}

TEST(Heterogeneity, DegreeCorrelatedMarksHubs) {
  auto fx = UnstructuredFixture::make(80, 6012);
  Rng rng(6);
  BimodalConfig cfg;
  cfg.fast_fraction = 0.2;
  const auto delays = make_bimodal_delays_by_degree(fx.net, cfg, rng);
  const auto fast = delays.slot_fast(fx.net);
  // Every fast slot's degree is >= every slow slot's degree - small tie
  // slack (ties are broken randomly at the boundary degree).
  std::size_t min_fast_degree = static_cast<std::size_t>(-1);
  std::size_t max_slow_degree = 0;
  for (const SlotId s : fx.net.graph().active_slots()) {
    if (fast[s]) {
      min_fast_degree = std::min(min_fast_degree, fx.net.graph().degree(s));
    } else {
      max_slow_degree = std::max(max_slow_degree, fx.net.graph().degree(s));
    }
  }
  EXPECT_GE(min_fast_degree + 1, max_slow_degree);
}

TEST(Heterogeneity, DelaysFollowHostsThroughSwaps) {
  auto fx = UnstructuredFixture::make(40, 6013);
  Rng rng(7);
  BimodalConfig cfg;
  const auto delays = make_bimodal_delays_by_degree(fx.net, cfg, rng);
  const NodeId host_a = fx.net.placement().host_of(0);
  const NodeId host_b = fx.net.placement().host_of(1);
  const auto before = delays.slot_delays(fx.net);
  fx.net.placement().swap_slots(0, 1);
  const auto after = delays.slot_delays(fx.net);
  EXPECT_DOUBLE_EQ(after[0], delays.host_delay_ms[host_b]);
  EXPECT_DOUBLE_EQ(after[1], delays.host_delay_ms[host_a]);
  EXPECT_DOUBLE_EQ(before[0], delays.host_delay_ms[host_a]);
}

TEST(Lookups, UniformQueriesValid) {
  auto fx = UnstructuredFixture::make(30, 6001);
  Rng rng(6);
  const auto queries = uniform_queries(fx.net.graph(), 200, rng);
  EXPECT_EQ(queries.size(), 200u);
  for (const auto& q : queries) EXPECT_NE(q.src, q.dst);
}

TEST(Lookups, BiasedQueriesHitFastFraction) {
  auto fx = UnstructuredFixture::make(60, 6002);
  Rng rng(7);
  BimodalConfig cfg;
  const auto delays = make_bimodal_delays(fx.net, cfg, rng);
  const auto fast = delays.slot_fast(fx.net);
  for (const double frac : {0.0, 0.5, 1.0}) {
    const auto queries =
        biased_queries(fx.net.graph(), fast, frac, 2000, rng);
    std::size_t fast_hits = 0;
    for (const auto& q : queries) {
      if (fast[q.dst]) ++fast_hits;
    }
    EXPECT_NEAR(static_cast<double>(fast_hits) / 2000.0, frac, 0.05);
  }
}

// ------------------------------------------------------ LookupTraffic ----

TEST(LookupTraffic, IssuesAtConfiguredRate) {
  auto fx = UnstructuredFixture::make(30, 6020);
  Simulator sim;
  LookupTrafficParams params;
  params.rate_per_s = 5.0;
  params.start_s = 0.0;
  params.end_s = 400.0;
  params.window_s = 100.0;
  LookupTrafficProcess traffic(
      fx.net, sim, params,
      [&](const QueryPair& q) { return fx.net.slot_latency(q.src, q.dst); },
      18);
  traffic.start();
  sim.run_until(500.0);
  // Poisson with mean 2000 arrivals; a wide tolerance avoids flakiness.
  EXPECT_GT(traffic.issued(), 1600u);
  EXPECT_LT(traffic.issued(), 2400u);
  EXPECT_EQ(traffic.unreachable(), 0u);
  EXPECT_EQ(traffic.observed().size(), 4u);
  EXPECT_GT(traffic.latencies().count(), 0u);
}

TEST(LookupTraffic, ObservesOptimizationImprovement) {
  auto fx = UnstructuredFixture::make(60, 6021);
  Simulator sim;
  PropParams pparams;
  pparams.init_timer_s = 10.0;
  PropEngine engine(fx.net, sim, pparams, 19);

  LookupTrafficParams params;
  params.rate_per_s = 8.0;
  params.end_s = 2000.0;
  params.window_s = 200.0;
  LookupTrafficProcess traffic(
      fx.net, sim, params,
      [&](const QueryPair& q) {
        // First-response flood latency under the *current* topology.
        return fx.net.flood_latencies(q.src)[q.dst];
      },
      20);
  engine.start();
  traffic.start();
  sim.run_until(2000.0);
  ASSERT_GE(traffic.observed().size(), 5u);
  // Users in the last window experienced better latency than the first.
  EXPECT_LT(traffic.observed().last_value(),
            traffic.observed().first_value());
  // The distribution is queryable.
  EXPECT_GE(traffic.latencies().quantile(0.95),
            traffic.latencies().median());
}

TEST(LookupTraffic, CountsUnreachable) {
  auto fx = UnstructuredFixture::make(20, 6022);
  Simulator sim;
  LookupTrafficParams params;
  params.rate_per_s = 2.0;
  params.end_s = 100.0;
  LookupTrafficProcess traffic(
      fx.net, sim, params,
      [](const QueryPair&) {
        return std::numeric_limits<double>::infinity();
      },
      21);
  traffic.start();
  sim.run_until(200.0);
  EXPECT_GT(traffic.issued(), 0u);
  EXPECT_EQ(traffic.unreachable(), traffic.issued());
}

// -------------------------------------------------------------- Churn ----

TEST(Churn, JoinAddsConnectedPeer) {
  auto fx = UnstructuredFixture::make(30, 6003);
  Simulator sim;
  GnutellaConfig gcfg;
  gcfg.attach_links = 3;
  ChurnParams params;
  std::vector<NodeId> spares;
  for (const NodeId h : fx.topo.stub_nodes) {
    if (!fx.net.placement().host_bound(h) && spares.size() < 5) {
      spares.push_back(h);
    }
  }
  ChurnProcess churn(fx.net, sim, nullptr, gcfg, params, spares, 8);
  const std::size_t before = fx.net.size();
  EXPECT_TRUE(churn.do_join());
  EXPECT_EQ(fx.net.size(), before + 1);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
  EXPECT_TRUE(fx.net.placement().validate());
}

TEST(Churn, LeaveKeepsConnectivity) {
  auto fx = UnstructuredFixture::make(40, 6004);
  Simulator sim;
  GnutellaConfig gcfg;
  ChurnParams params;
  ChurnProcess churn(fx.net, sim, nullptr, gcfg, params, {}, 9);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(churn.do_leave());
    ASSERT_TRUE(fx.net.graph().active_subgraph_connected());
    ASSERT_TRUE(fx.net.placement().validate());
  }
  EXPECT_EQ(fx.net.size(), 30u);
}

TEST(Churn, LeaveRefusesBelowMinPopulation) {
  auto fx = UnstructuredFixture::make(10, 6005, /*attach_links=*/3);
  Simulator sim;
  GnutellaConfig gcfg;
  ChurnParams params;
  params.min_population = 10;
  ChurnProcess churn(fx.net, sim, nullptr, gcfg, params, {}, 10);
  EXPECT_FALSE(churn.do_leave());
  EXPECT_EQ(fx.net.size(), 10u);
}

TEST(Churn, DepartedHostsAreReusedForJoins) {
  auto fx = UnstructuredFixture::make(30, 6006);
  Simulator sim;
  GnutellaConfig gcfg;
  ChurnParams params;
  ChurnProcess churn(fx.net, sim, nullptr, gcfg, params, {}, 11);
  ASSERT_TRUE(churn.do_leave());
  ASSERT_TRUE(churn.do_join());  // only possible via the recycled host
  EXPECT_EQ(fx.net.size(), 30u);
  EXPECT_EQ(churn.joins(), 1u);
  EXPECT_EQ(churn.leaves(), 1u);
}

TEST(Churn, SuddenFailureRepairsOverlay) {
  auto fx = UnstructuredFixture::make(40, 6008);
  Simulator sim;
  GnutellaConfig gcfg;
  gcfg.attach_links = 3;
  ChurnParams params;
  ChurnProcess churn(fx.net, sim, nullptr, gcfg, params, {}, 14);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(churn.do_fail());
    ASSERT_TRUE(fx.net.graph().active_subgraph_connected());
    ASSERT_TRUE(fx.net.placement().validate());
    // Survivors never end below the attach floor.
    for (const SlotId s : fx.net.graph().active_slots()) {
      EXPECT_GE(fx.net.graph().degree(s), 1u);
    }
  }
  EXPECT_EQ(churn.failures(), 12u);
  EXPECT_EQ(fx.net.size(), 28u);
  EXPECT_GT(churn.repair_links(), 0u);
}

TEST(Churn, FailureNotifiesEngine) {
  auto fx = UnstructuredFixture::make(40, 6009);
  Simulator sim;
  PropParams pparams;
  pparams.init_timer_s = 10.0;
  PropEngine engine(fx.net, sim, pparams, 15);
  engine.start();
  GnutellaConfig gcfg;
  gcfg.attach_links = 3;
  ChurnParams params;
  ChurnProcess churn(fx.net, sim, &engine, gcfg, params, {}, 16);
  ASSERT_TRUE(churn.do_fail());
  // Repaired edges appear at the front of both endpoints' queues; just
  // assert the engine keeps running coherently afterwards.
  sim.run_until(500.0);
  EXPECT_GT(engine.stats().attempts, 0u);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
}

TEST(Churn, FirstEventRespectsEndTime) {
  // A tiny rate draws a first arrival far beyond the churn window;
  // start() must not schedule it at all (the old behavior fired one
  // event past end_s, perturbing post-window runs).
  auto fx = UnstructuredFixture::make(40, 6020);
  Simulator sim;
  GnutellaConfig gcfg;
  ChurnParams params;
  params.join_rate_per_s = 0.0005;  // mean inter-arrival 2000 s
  params.leave_rate_per_s = 0.0005;
  params.fail_rate_per_s = 0.0005;
  params.start_s = 0.0;
  params.end_s = 5.0;
  ChurnProcess churn(fx.net, sim, nullptr, gcfg, params, {}, 6021);
  churn.start();
  sim.run_until(20000.0);
  EXPECT_EQ(churn.joins() + churn.leaves() + churn.failures(), 0u);
}

TEST(Churn, ScheduledFailuresInterleave) {
  auto fx = UnstructuredFixture::make(60, 6014);
  Simulator sim;
  GnutellaConfig gcfg;
  ChurnParams params;
  params.join_rate_per_s = 0.0;
  params.leave_rate_per_s = 0.0;
  params.fail_rate_per_s = 0.05;
  params.start_s = 0.0;
  params.end_s = 400.0;
  ChurnProcess churn(fx.net, sim, nullptr, gcfg, params, {}, 17);
  churn.start();
  sim.run_until(600.0);
  EXPECT_GT(churn.failures(), 5u);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
}

TEST(Churn, ScheduledProcessRunsWithEngine) {
  auto fx = UnstructuredFixture::make(50, 6007);
  Simulator sim;
  PropParams pparams;
  pparams.init_timer_s = 10.0;
  PropEngine engine(fx.net, sim, pparams, 12);
  engine.start();

  GnutellaConfig gcfg;
  ChurnParams params;
  params.join_rate_per_s = 0.05;
  params.leave_rate_per_s = 0.05;
  params.start_s = 0.0;
  params.end_s = 500.0;
  std::vector<NodeId> spares;
  for (const NodeId h : fx.topo.stub_nodes) {
    if (!fx.net.placement().host_bound(h) && spares.size() < 20) {
      spares.push_back(h);
    }
  }
  ChurnProcess churn(fx.net, sim, &engine, gcfg, params, spares, 13);
  churn.start();
  sim.run_until(800.0);
  EXPECT_GT(churn.joins() + churn.leaves(), 5u);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
  EXPECT_TRUE(fx.net.placement().validate());
  EXPECT_GT(engine.stats().attempts, 0u);
}

}  // namespace
}  // namespace propsim
