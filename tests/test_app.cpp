#include <gtest/gtest.h>

#include "app/experiment.h"
#include "app/sweep.h"
#include "common/config.h"

namespace propsim {
namespace {

// ------------------------------------------------------------ Config ----

TEST(Config, ParsesKeysCommentsAndBlanks) {
  const Config c = Config::parse(
      "# header comment\n"
      "overlay = chord\n"
      "\n"
      "nodes=500   # trailing comment\n"
      "  horizon  =  1800.5  \n");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.get_string("overlay", ""), "chord");
  EXPECT_EQ(c.get_int("nodes", 0), 500);
  EXPECT_DOUBLE_EQ(c.get_double("horizon", 0.0), 1800.5);
}

TEST(Config, LaterAssignmentsWin) {
  const Config c = Config::parse("x = 1\nx = 2\n");
  EXPECT_EQ(c.get_int("x", 0), 2);
}

TEST(Config, FallbacksApply) {
  const Config c = Config::parse("");
  EXPECT_EQ(c.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_TRUE(c.get_bool("missing", true));
  EXPECT_FALSE(c.has("missing"));
}

TEST(Config, BooleanSpellings) {
  const Config c = Config::parse(
      "a = true\nb = FALSE\nc = 1\nd = off\ne = Yes\n");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_TRUE(c.get_bool("e", false));
}

TEST(Config, SetOverrides) {
  Config c = Config::parse("x = 1\n");
  c.set("x", "5");
  c.set("y", "hello");
  EXPECT_EQ(c.get_int("x", 0), 5);
  EXPECT_EQ(c.get_string("y", ""), "hello");
}

// ---------------------------------------------------- ExperimentSpec ----

/// Parses a config expected to be valid; a parse failure fails the test
/// with the full per-key report.
ExperimentSpec must_parse(const Config& config) {
  const SpecResult parsed = ExperimentSpec::from_config(config);
  EXPECT_TRUE(parsed.ok()) << parsed.error_report();
  return parsed.ok() ? parsed.spec() : ExperimentSpec{};
}

/// True when some issue's key or message contains `needle`.
bool mentions(const SpecResult& result, const std::string& needle) {
  for (const SpecIssue& issue : result.errors) {
    if (issue.key.find(needle) != std::string::npos ||
        issue.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(ExperimentSpec, DefaultsAreThePaperDefaults) {
  const auto spec = must_parse(Config::parse(""));
  EXPECT_EQ(spec.overlay, ExperimentSpec::Overlay::kGnutella);
  EXPECT_EQ(spec.protocol, ExperimentSpec::Protocol::kPropG);
  EXPECT_EQ(spec.nodes, 1000u);
  EXPECT_EQ(spec.prop.nhops, 2u);
  EXPECT_DOUBLE_EQ(spec.prop.init_timer_s, 60.0);
  EXPECT_EQ(spec.prop.max_init_trial, 10u);
  EXPECT_DOUBLE_EQ(spec.prop.min_var, 0.0);
  EXPECT_EQ(spec.oracle_mode, ExperimentSpec::OracleMode::kAuto);
  EXPECT_EQ(spec.oracle_cache_rows, 1024u);
}

TEST(ExperimentSpec, ParsesFullSpec) {
  const auto spec = must_parse(Config::parse(
      "topology = ts-small\noverlay = chord\nprotocol = prop-g\n"
      "nodes = 300\nseed = 7\nhorizon = 100\nsample_interval = 10\n"
      "queries = 500\nnhops = 4\noracle = dijkstra\n"
      "oracle_cache_rows = 64\n"));
  EXPECT_EQ(spec.topology, ExperimentSpec::Topology::kTsSmall);
  EXPECT_EQ(spec.overlay, ExperimentSpec::Overlay::kChord);
  EXPECT_EQ(spec.nodes, 300u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.prop.nhops, 4u);
  EXPECT_EQ(spec.oracle_mode, ExperimentSpec::OracleMode::kDijkstra);
  EXPECT_EQ(spec.oracle_cache_rows, 64u);
}

TEST(ExperimentSpec, RejectsLtmOnStructuredOverlay) {
  const auto result = ExperimentSpec::from_config(
      Config::parse("overlay = chord\nprotocol = ltm\n"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(mentions(result, "protocol"));
}

TEST(ExperimentSpec, RejectsPropOOnStructuredOverlay) {
  const auto result = ExperimentSpec::from_config(
      Config::parse("overlay = pastry\nprotocol = prop-o\n"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(mentions(result, "protocol"));
}

TEST(ExperimentSpec, RejectsChurnOnStructuredOverlay) {
  const auto result = ExperimentSpec::from_config(Config::parse(
      "overlay = can\nchurn_join_rate = 0.1\nchurn_leave_rate = 0.1\n"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(mentions(result, "churn"));
}

TEST(ExperimentSpec, RejectsBiasWithoutHeterogeneity) {
  const auto result = ExperimentSpec::from_config(
      Config::parse("fraction_fast_dest = 0.5\n"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(mentions(result, "fraction_fast_dest"));
}

TEST(ExperimentSpec, UnknownKeyGetsSuggestion) {
  const auto result =
      ExperimentSpec::from_config(Config::parse("nodess = 64\n"));
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].key, "nodess");
  EXPECT_NE(result.errors[0].hint.find("nodes"), std::string::npos);
  EXPECT_NE(result.error_report().find("nodess"), std::string::npos);
}

TEST(ExperimentSpec, CollectsEveryProblemAtOnce) {
  const auto result = ExperimentSpec::from_config(Config::parse(
      "nodes = abc\nprotocol = prop-x\nhorizont = 100\nqueries = 0\n"));
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.errors.size(), 4u);
  EXPECT_TRUE(mentions(result, "nodes"));
  EXPECT_TRUE(mentions(result, "protocol"));
  EXPECT_TRUE(mentions(result, "horizont"));
  EXPECT_TRUE(mentions(result, "queries"));
}

TEST(ExperimentSpec, RejectsHierarchicalOracleOnWaxman) {
  const auto result = ExperimentSpec::from_config(
      Config::parse("topology = waxman\noracle = hierarchical\n"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(mentions(result, "oracle"));
}

// --------------------------------------------------------------- sweep ----

TEST(Sweep, SplitCommas) {
  EXPECT_EQ(split_commas("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_commas("solo"), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(split_commas("x,"), (std::vector<std::string>{"x", ""}));
}

TEST(Sweep, ParseAxis) {
  const SweepAxis axis = parse_sweep_axis("sweep:nodes=100,200,400");
  EXPECT_EQ(axis.key, "nodes");
  EXPECT_EQ(axis.values,
            (std::vector<std::string>{"100", "200", "400"}));
}

TEST(SweepDeathTest, RejectsMalformedAxes) {
  EXPECT_DEATH(parse_sweep_axis("sweep:no-equals"), "check failed");
  EXPECT_DEATH(parse_sweep_axis("sweep:=v"), "check failed");
  EXPECT_DEATH(parse_sweep_axis("sweep:k=a,,b"), "check failed");
}

TEST(Sweep, ExpandCartesianProduct) {
  Config base = Config::parse("nodes = 64\n");
  const std::vector<SweepAxis> axes{
      {"protocol", {"prop-g", "ltm"}},
      {"nhops", {"1", "2", "4"}},
  };
  const auto combos = expand_sweep(base, axes);
  ASSERT_EQ(combos.size(), 6u);
  EXPECT_EQ(combos[0].label, "protocol=prop-g nhops=1");
  EXPECT_EQ(combos[5].label, "protocol=ltm nhops=4");
  // Base keys survive; axis keys are overridden per combo.
  EXPECT_EQ(combos[3].config.get_int("nodes", 0), 64);
  EXPECT_EQ(combos[3].config.get_string("protocol", ""), "ltm");
  EXPECT_EQ(combos[3].config.get_string("nhops", ""), "1");
}

TEST(Sweep, NoAxesYieldsBase) {
  const auto combos = expand_sweep(Config::parse("x = 1\n"), {});
  ASSERT_EQ(combos.size(), 1u);
  EXPECT_EQ(combos[0].label, "(base)");
  EXPECT_EQ(combos[0].config.get_int("x", 0), 1);
}

// ------------------------------------------------------ run_experiment ----

Config small_base(const std::string& extra) {
  return Config::parse("nodes = 64\nhorizon = 400\nsample_interval = 100\n"
                       "queries = 300\ninit_timer = 10\n" +
                       extra);
}

TEST(RunExperiment, GnutellaPropGImproves) {
  const auto spec = must_parse(small_base(""));
  const auto result = run_experiment(spec);
  EXPECT_EQ(result.metric_name, "lookup_ms");
  EXPECT_LT(result.final_value, result.initial_value);
  EXPECT_GT(result.exchanges, 0u);
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.final_population, 64u);
  EXPECT_EQ(result.series.size(), 5u);
}

TEST(RunExperiment, ChordStretchImproves) {
  const auto spec =
      must_parse(small_base("overlay = chord\n"));
  const auto result = run_experiment(spec);
  EXPECT_EQ(result.metric_name, "stretch");
  EXPECT_GT(result.initial_value, 1.0);
  EXPECT_LT(result.final_value, result.initial_value);
}

TEST(RunExperiment, PastryTapestryAndCanRun) {
  for (const std::string overlay : {"pastry", "tapestry", "can"}) {
    const auto spec = must_parse(
        small_base("overlay = " + overlay + "\n"));
    const auto result = run_experiment(spec);
    EXPECT_GT(result.initial_value, 1.0) << overlay;
    EXPECT_LE(result.final_value, result.initial_value) << overlay;
  }
}

TEST(RunExperiment, ProtocolNoneIsFlat) {
  const auto spec =
      must_parse(small_base("protocol = none\n"));
  const auto result = run_experiment(spec);
  EXPECT_DOUBLE_EQ(result.final_value, result.initial_value);
  EXPECT_EQ(result.exchanges, 0u);
}

TEST(RunExperiment, LtmRunsOnGnutella) {
  const auto spec =
      must_parse(small_base("protocol = ltm\n"));
  const auto result = run_experiment(spec);
  EXPECT_GT(result.ltm_rounds, 0u);
  EXPECT_LT(result.final_value, result.initial_value);
}

TEST(RunExperiment, ChurnKeepsRunning) {
  const auto spec = must_parse(small_base(
      "churn_join_rate = 0.05\nchurn_leave_rate = 0.05\n"
      "churn_fail_rate = 0.02\nchurn_start = 50\nchurn_end = 300\n"));
  const auto result = run_experiment(spec);
  EXPECT_TRUE(result.connected);
  EXPECT_GT(result.churn_joins + result.churn_leaves + result.churn_failures,
            0u);
}

TEST(RunExperiment, HeterogeneityBiasedWorkload) {
  const auto spec = must_parse(small_base(
      "protocol = prop-o\nheterogeneity = bimodal-degree\n"
      "fraction_fast_dest = 0.9\n"));
  const auto result = run_experiment(spec);
  EXPECT_LT(result.final_value, result.initial_value);
}

TEST(RunExperiment, DeterministicForSeed) {
  const auto spec = must_parse(small_base("seed = 99\n"));
  const auto a = run_experiment(spec);
  const auto b = run_experiment(spec);
  EXPECT_DOUBLE_EQ(a.final_value, b.final_value);
  EXPECT_EQ(a.exchanges, b.exchanges);
}

TEST(RunExperiment, EventDrivenLookupTraffic) {
  const auto spec = must_parse(
      small_base("lookup_rate = 4\n"));
  const auto result = run_experiment(spec);
  EXPECT_GT(result.lookups_issued, 800u);
  EXPECT_EQ(result.lookups_unreachable, 0u);
  EXPECT_GT(result.observed.size(), 0u);
  EXPECT_GE(result.observed_p95_ms, result.observed_p50_ms);
  // What users experienced improved along with the snapshot metric.
  EXPECT_LT(result.observed.last_value(), result.observed.first_value());
}

TEST(RunExperiment, MessageDelaysAndSelectionKeys) {
  const auto spec = must_parse(small_base(
      "protocol = prop-o\nmodel_message_delays = true\n"
      "selection = random\n"));
  EXPECT_TRUE(spec.prop.model_message_delays);
  EXPECT_EQ(spec.prop.selection, SelectionPolicy::kRandom);
  const auto result = run_experiment(spec);
  EXPECT_LT(result.final_value, result.initial_value);
}

TEST(RunExperiment, ChordLookupTrafficUsesRouting) {
  const auto spec = must_parse(
      small_base("overlay = chord\nlookup_rate = 4\n"));
  const auto result = run_experiment(spec);
  EXPECT_GT(result.lookups_issued, 0u);
  EXPECT_EQ(result.lookups_unreachable, 0u);
  EXPECT_GT(result.observed_p50_ms, 0.0);
}

TEST(RunExperiment, WaxmanTopologyWorks) {
  const auto spec = must_parse(
      small_base("topology = waxman\nnodes = 48\n"));
  const auto result = run_experiment(spec);
  EXPECT_LT(result.final_value, result.initial_value);
}

TEST(RunExperiment, OracleModesAgree) {
  // The hierarchical engine (auto on transit-stub) and the Dijkstra
  // fallback must drive the simulation to identical results.
  const auto hier = run_experiment(must_parse(small_base("")));
  const auto dijk =
      run_experiment(must_parse(small_base("oracle = dijkstra\n")));
  EXPECT_DOUBLE_EQ(hier.initial_value, dijk.initial_value);
  EXPECT_DOUBLE_EQ(hier.final_value, dijk.final_value);
  EXPECT_EQ(hier.exchanges, dijk.exchanges);
  EXPECT_EQ(hier.control_messages, dijk.control_messages);
}

TEST(ExperimentResult, CountersViewIsStable) {
  const auto result = run_experiment(must_parse(small_base("")));
  EXPECT_EQ(ExperimentResult::kCountersVersion, 7);
  const auto counters = result.counters();
  ASSERT_GE(counters.size(), 4u);
  // Spot-check the fixed order and that values mirror the struct.
  EXPECT_EQ(counters[0].first, "exchanges");
  EXPECT_EQ(counters[0].second, result.exchanges);
  bool found_control = false;
  bool found_trace_events = false;
  bool found_timeouts = false;
  bool found_fault_losses = false;
  bool found_sim_events = false;
  for (const auto& [name, value] : counters) {
    if (name == "control_messages") {
      found_control = true;
      EXPECT_EQ(value, result.control_messages);
    }
    if (name == "trace_events") {
      found_trace_events = true;
      EXPECT_EQ(value, result.trace.events);
    }
    if (name == "timeouts") {
      found_timeouts = true;
      EXPECT_EQ(value, result.timeouts);
    }
    if (name == "fault_losses") {
      found_fault_losses = true;
      // A fault-free run never records injector activity.
      EXPECT_EQ(value, 0u);
    }
    if (name == "sim_events_executed") {
      found_sim_events = true;
      EXPECT_EQ(value, result.sim_events_executed);
      EXPECT_GT(value, 0u);
    }
  }
  EXPECT_TRUE(found_control);
  EXPECT_TRUE(found_trace_events);
  EXPECT_TRUE(found_timeouts);
  EXPECT_TRUE(found_fault_losses);
  EXPECT_TRUE(found_sim_events);
}

TEST(ExperimentResult, EventBusCountersMatchEngineStats) {
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "PROPSIM_TRACE=OFF build";
  const auto result = run_experiment(must_parse(small_base("")));
  // Every committed exchange and probe trial went over the bus.
  EXPECT_EQ(result.trace.count(obs::TraceEventKind::kExchangeCommit),
            result.exchanges);
  EXPECT_EQ(result.trace.count(obs::TraceEventKind::kProbe),
            result.attempts);
}

}  // namespace
}  // namespace propsim
