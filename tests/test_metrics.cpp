#include <algorithm>

#include <gtest/gtest.h>

#include "chord/chord_ring.h"
#include "fixtures.h"
#include "metrics/convergence.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

TEST(Metrics, SampleQueryPairsValid) {
  auto fx = UnstructuredFixture::make(30, 5001);
  Rng rng(1);
  const auto pairs = sample_query_pairs(fx.net.graph(), 100, rng);
  EXPECT_EQ(pairs.size(), 100u);
  for (const QueryPair& q : pairs) {
    EXPECT_NE(q.src, q.dst);
    EXPECT_TRUE(fx.net.graph().is_active(q.src));
    EXPECT_TRUE(fx.net.graph().is_active(q.dst));
  }
}

TEST(Metrics, SampleQueryPairsUnderChurnSkipsInactive) {
  auto fx = UnstructuredFixture::make(40, 5006);
  LogicalGraph& g = fx.net.graph();
  // A burst of departures: every third slot leaves.
  std::vector<SlotId> gone;
  for (SlotId s = 1; s < 40; s += 3) {
    g.deactivate_slot(s);
    gone.push_back(s);
  }
  Rng rng(6);
  const auto pairs = sample_query_pairs(g, 200, rng);
  EXPECT_EQ(pairs.size(), 200u);
  for (const QueryPair& q : pairs) {
    EXPECT_TRUE(g.is_active(q.src));
    EXPECT_TRUE(g.is_active(q.dst));
    EXPECT_FALSE(std::binary_search(gone.begin(), gone.end(), q.src));
    EXPECT_FALSE(std::binary_search(gone.begin(), gone.end(), q.dst));
  }
}

TEST(Metrics, SampleQueryPairsDeterministicAfterRejoin) {
  auto fx = UnstructuredFixture::make(40, 5007);
  LogicalGraph& g = fx.net.graph();
  // Leave/rejoin cycle: 2, 9 and 14 depart; 9 comes back isolated.
  for (const SlotId s : {SlotId{2}, SlotId{9}, SlotId{14}}) {
    g.deactivate_slot(s);
  }
  g.reactivate_slot(9);
  Rng a(7);
  Rng b(7);
  const auto first = sample_query_pairs(g, 300, a);
  const auto second = sample_query_pairs(g, 300, b);
  ASSERT_EQ(first.size(), second.size());
  bool saw_rejoined = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].src, second[i].src);
    EXPECT_EQ(first[i].dst, second[i].dst);
    EXPECT_NE(first[i].src, 2u);
    EXPECT_NE(first[i].dst, 2u);
    EXPECT_NE(first[i].src, 14u);
    EXPECT_NE(first[i].dst, 14u);
    saw_rejoined =
        saw_rejoined || first[i].src == 9u || first[i].dst == 9u;
  }
  // The rejoined slot is sampled again (300 draws over 38 slots).
  EXPECT_TRUE(saw_rejoined);
}

TEST(Metrics, AverageRouteLatencyIsMean) {
  const std::vector<QueryPair> pairs{{0, 1}, {1, 2}, {2, 0}};
  double next = 0.0;
  const double avg = average_route_latency(
      pairs, [&](const QueryPair&) { return next += 10.0; });
  EXPECT_DOUBLE_EQ(avg, 20.0);  // (10+20+30)/3
}

TEST(Metrics, StretchRatioComputation) {
  auto fx = UnstructuredFixture::make(30, 5002);
  Rng rng(2);
  const auto pairs = sample_query_pairs(fx.net.graph(), 50, rng);
  // A router that always doubles the direct latency -> stretch 2.
  const auto r = stretch(fx.net, pairs, [&](const QueryPair& q) {
    return 2.0 * fx.net.slot_latency(q.src, q.dst);
  });
  EXPECT_NEAR(r.stretch, 2.0, 1e-9);
  EXPECT_NEAR(r.logical_al, 2.0 * r.physical_al, 1e-9);
}

TEST(Metrics, UnstructuredLookupMatchesPerPairDijkstra) {
  auto fx = UnstructuredFixture::make(40, 5003);
  Rng rng(3);
  const auto pairs = sample_query_pairs(fx.net.graph(), 60, rng);
  const auto grouped = unstructured_lookup_latencies(fx.net, pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto direct = fx.net.flood_latencies(pairs[i].src);
    EXPECT_DOUBLE_EQ(grouped[i], direct[pairs[i].dst]);
  }
}

TEST(Metrics, UnstructuredLookupNeverBeatsDirectLatency) {
  auto fx = UnstructuredFixture::make(40, 5004);
  Rng rng(4);
  const auto pairs = sample_query_pairs(fx.net.graph(), 100, rng);
  const auto lat = unstructured_lookup_latencies(fx.net, pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_GE(lat[i],
              fx.net.slot_latency(pairs[i].src, pairs[i].dst) - 1e-9);
  }
}

TEST(Metrics, ChordRouterEndsAtDestination) {
  Rng rng(5);
  auto fx = UnstructuredFixture::make(40, 5005);
  const auto ring = ChordRing::build_random(40, ChordConfig{}, rng);
  // Reuse the fixture's placement/hosts but the chord logical graph is
  // irrelevant for routing latency: chord_router uses ring + placement.
  const auto router = chord_router(fx.net, ring);
  const auto pairs = sample_query_pairs(fx.net.graph(), 40, rng);
  for (const QueryPair& q : pairs) {
    const double lat = router(q);
    EXPECT_GE(lat, 0.0);
    // Routed latency is at least the direct physical latency.
    EXPECT_GE(lat, fx.net.slot_latency(q.src, q.dst) - 1e-9);
  }
}

TEST(Convergence, SamplesOnSchedule) {
  Simulator sim;
  double value = 0.0;
  sim.schedule_at(25.0, [&] { value = 7.0; });
  ConvergenceSampler sampler(sim, "metric", 0.0, 100.0, 10.0,
                             [&] { return value; });
  sim.run_all();
  const TimeSeries& ts = sampler.series();
  ASSERT_EQ(ts.size(), 11u);
  EXPECT_DOUBLE_EQ(ts.value_at(20.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(30.0), 7.0);
  EXPECT_DOUBLE_EQ(ts.last_value(), 7.0);
  EXPECT_EQ(ts.name(), "metric");
}

TEST(Convergence, BatchedPrepareRunsOncePerTickBeforeMetrics) {
  Simulator sim;
  int prepared = 0;
  double base = 0.0;
  sim.schedule_at(15.0, [&] { base = 100.0; });
  std::vector<ConvergenceSampler::NamedMetric> metrics;
  metrics.push_back(
      {"a", [&] { return base + static_cast<double>(prepared); }});
  metrics.push_back({"b", [&] { return 2.0 * base; }});
  ConvergenceSampler sampler(sim, 0.0, 40.0, 10.0, [&] { ++prepared; },
                             std::move(metrics));
  sim.run_all();
  EXPECT_EQ(prepared, 5);  // ticks at 0, 10, 20, 30, 40
  ASSERT_EQ(sampler.series_count(), 2u);
  EXPECT_EQ(sampler.series(0).name(), "a");
  EXPECT_EQ(sampler.series(1).name(), "b");
  // Prepare has already run when metric "a" samples at t=0.
  EXPECT_DOUBLE_EQ(sampler.series(0).value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sampler.series(0).value_at(20.0), 103.0);
  EXPECT_DOUBLE_EQ(sampler.series(1).last_value(), 200.0);
}

TEST(Convergence, PrepareGuardSkipsPrepareButNeverMetrics) {
  Simulator sim;
  int prepared = 0;
  int asked = 0;
  std::vector<ConvergenceSampler::NamedMetric> metrics;
  metrics.push_back(
      {"a", [&] { return static_cast<double>(prepared); }});
  ConvergenceSampler sampler(sim, 0.0, 40.0, 10.0, [&] { ++prepared; },
                             std::move(metrics));
  // Allow prepare on every other tick; metrics sample regardless.
  sampler.set_prepare_guard([&] { return (asked++ % 2) == 0; });
  sim.run_all();
  EXPECT_EQ(asked, 5);     // guard consulted every tick (0..40)
  EXPECT_EQ(prepared, 3);  // prepare ran at ticks 0, 20, 40 only
  EXPECT_EQ(sampler.prepared_ticks(), 3u);
  ASSERT_EQ(sampler.series(0).size(), 5u);
  // Samples see the stale prepare state on guarded-off ticks.
  EXPECT_DOUBLE_EQ(sampler.series(0).value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sampler.series(0).value_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(sampler.series(0).value_at(20.0), 2.0);
  EXPECT_DOUBLE_EQ(sampler.series(0).value_at(40.0), 3.0);
}

TEST(Convergence, PreparedTicksCountsEveryTickWithoutGuard) {
  Simulator sim;
  int prepared = 0;
  std::vector<ConvergenceSampler::NamedMetric> metrics;
  metrics.push_back({"a", [&] { return 0.0; }});
  ConvergenceSampler sampler(sim, 0.0, 40.0, 10.0, [&] { ++prepared; },
                             std::move(metrics));
  sim.run_all();
  EXPECT_EQ(prepared, 5);
  EXPECT_EQ(sampler.prepared_ticks(), 5u);
}

TEST(Convergence, InterleavesWithOtherEvents) {
  Simulator sim;
  int counter = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * 10.0 + 5.0, [&] { ++counter; });
  }
  ConvergenceSampler sampler(sim, "count", 0.0, 100.0, 10.0,
                             [&] { return static_cast<double>(counter); });
  sim.run_all();
  // At t=50 exactly 5 increments (5,15,25,35,45) have fired.
  EXPECT_DOUBLE_EQ(sampler.series().value_at(50.0), 5.0);
}

}  // namespace
}  // namespace propsim
